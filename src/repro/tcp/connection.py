"""The TCP sender: window management, transmission, recovery, pacing.

:class:`TcpSender` is the phone-side half of a connection. It mirrors the
structure of the Linux sender:

* a :class:`~repro.tcp.scoreboard.Scoreboard` tracks in-flight data and
  applies SACKs / loss marks,
* a :class:`~repro.tcp.rate_sample.DeliveryRateEstimator` produces the
  per-ACK rate samples consumed by BBR,
* a :class:`~repro.tcp.pacing.PacingController` implements internal
  pacing with the paper's stride,
* a :class:`~repro.cc.base.CongestionOps` module owns cwnd and pacing
  rate.

Every CPU-visible operation — transmitting a super-packet, a pacing-timer
fire, an RTO — is charged to the device CPU through the
:class:`~repro.tcp.stack.StackServices` the stack provides; the sender
never performs work "for free". That is what couples protocol behaviour
to device configuration, which is the paper's subject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..cc.base import CongestionOps
from ..netsim.packet import PACKET_POOL, Packet
from ..sim import Timer
from ..units import MSEC, SEC
from .pacing import PacingController, PacingMode
from .rate_sample import DeliveryRateEstimator, TxRecord
from .rtt import MinRttFilter, RttEstimator
from .scoreboard import Scoreboard
from .segmentation import GSO_MAX_BYTES, tso_autosize_bytes

__all__ = [
    "SocketConfig",
    "TcpSender",
    "InfiniteSource",
    "FiniteSource",
    "TCP_INIT_CWND",
]

#: Linux initial congestion window (RFC 6928).
TCP_INIT_CWND = 10

# Internal pacing-rate factors (sysctl_tcp_pacing_ss_ratio / _ca_ratio).
_PACING_SS_RATIO = 2.0
_PACING_CA_RATIO = 1.2


class InfiniteSource:
    """A greedy application (iperf3): always has data to send."""

    def available_bytes(self, offset: int) -> int:
        """Bytes ready beyond *offset* (effectively unbounded)."""
        return 1 << 60


class FiniteSource:
    """An application sending exactly *total_bytes* then stopping."""

    def __init__(self, total_bytes: int):
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        self.total_bytes = int(total_bytes)

    def available_bytes(self, offset: int) -> int:
        """Bytes ready beyond *offset*."""
        return max(0, self.total_bytes - offset)


@dataclass
class SocketConfig:
    """Per-socket tunables (the experiment knobs of §5–§6)."""

    mss: int = 1448
    initial_cwnd: int = TCP_INIT_CWND
    #: pacing decision: auto (follow CC), forced on, forced off
    pacing_mode: str = PacingMode.AUTO
    #: the paper's pacing stride (Eq. 2); 1.0 = stock kernel behaviour
    pacing_stride: float = 1.0
    gso_max_bytes: int = GSO_MAX_BYTES
    #: maximum cwnd in segments (sndbuf/wmem bound)
    max_cwnd: int = 4096
    min_rto_ns: int = 200 * MSEC
    #: TCP-Small-Queues-style bound on one uninterrupted write_xmit burst
    tsq_limit_bytes: int = 2 * GSO_MAX_BYTES
    #: how far ``sendmsg`` may copy ahead of ``snd_nxt`` (unsent buffered
    #: data in the socket; tcp_notsent_lowat-style bound)
    sndbuf_unsent_bytes: int = 4 * GSO_MAX_BYTES

    def __post_init__(self) -> None:
        if self.pacing_mode not in PacingMode.ALL:
            raise ValueError(f"unknown pacing mode {self.pacing_mode!r}")
        if self.pacing_stride < 1.0:
            raise ValueError("pacing stride must be >= 1")
        if self.initial_cwnd < 1:
            raise ValueError("initial cwnd must be >= 1")


# Sender states (subset of the kernel's tcp_ca_state)
OPEN = "open"
RECOVERY = "recovery"
LOSS = "loss"


class TcpSender:
    """One uplink TCP connection on the phone."""

    def __init__(
        self,
        flow_id: int,
        services: "StackServicesProtocol",
        cc: CongestionOps,
        config: Optional[SocketConfig] = None,
        source: Optional[object] = None,
    ):
        self.flow_id = flow_id
        self.services = services
        self._loop = services.loop  # bound once: `now` is read per event
        self.cc = cc
        self.config = config or SocketConfig()
        self.source = source if source is not None else InfiniteSource()
        self.mss = self.config.mss

        # window state (segments, kernel-style)
        self.cwnd = self.config.initial_cwnd
        self.ssthresh = 1 << 30
        self.cwnd_cnt = 0  # fractional cwnd accumulator for cong_avoid
        self.state = OPEN
        self.high_seq = 0  # recovery exit point
        self.snd_nxt = 0
        #: receiver's advertised window (bytes), from the latest ACK
        self.snd_wnd = 1 << 30

        # components (loop/tracer route the scoreboard + estimator to the
        # compiled kernel on a compiled loop; see repro.kernel)
        _tracer = getattr(services, "tracer", None)
        self.scoreboard = Scoreboard(self.mss, loop=services.loop, tracer=_tracer)
        self.rtt = RttEstimator(
            min_rto_ns=self.config.min_rto_ns,
            loop=services.loop,
            tracer=_tracer,
        )
        self.min_rtt = MinRttFilter(loop=services.loop, tracer=_tracer)
        self.delivery = DeliveryRateEstimator(loop=services.loop, tracer=_tracer)
        self.pacer = PacingController(
            self.mss,
            stride=self.config.pacing_stride,
            min_tso_segs=cc.min_tso_segs(self),
            gso_max_bytes=self.config.gso_max_bytes,
        )

        # timers (armed through the stack so fires are CPU-charged)
        self._pacing_timer = Timer(services.loop, self._on_pacing_timer, name=f"pace-{flow_id}")
        self._rto_timer = Timer(services.loop, self._on_rto_timer, name=f"rto-{flow_id}")
        self._rto_backoff = 1

        # Fixed per-skb transmit costs, resolved once: the unpaced cost
        # and the paced cost (+ timer programming). The transmit path is
        # the hottest per-event code in a run, so it must not re-chase
        # services.costs attributes on every skb.
        self._xmit_cycles_unpaced = services.costs.skb_xmit_fixed
        self._xmit_cycles_paced = (
            services.costs.skb_xmit_fixed + services.costs.timer_program
        )

        # CPU-work serialization: one outstanding xmit item per connection
        self._xmit_pending = False
        self._burst_bytes = 0
        self._closed = False
        # sendmsg copy-ahead pipeline: bytes copied into the socket so
        # far; only copied data can be transmitted. The copy cost runs
        # as its own (process-context) work items, so the transmit path
        # can burst buffered data back-to-back.
        self.copied_seq = 0
        self._copy_pending = False

        # stats / hooks
        self.bytes_acked = 0
        self.acks_processed = 0
        self.rto_count = 0
        self.recovery_episodes = 0
        self.on_rtt_sample: Optional[Callable[[int], None]] = None
        self.on_first_byte_acked: Optional[Callable[[], None]] = None
        #: finite transfers: fire ``on_complete`` once everything up to
        #: this byte offset is cumulatively acknowledged
        self.complete_at_bytes: Optional[int] = None
        self.on_complete: Optional[Callable[[], None]] = None

        self.cc.init(self)
        self._update_rates()

    # -- convenience properties used by CC modules ----------------------------

    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self._loop._now  # direct clock read; `now` is hit per event

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd is below ssthresh."""
        return self.cwnd < self.ssthresh

    @property
    def in_recovery(self) -> bool:
        """True in fast recovery or RTO loss recovery."""
        return self.state != OPEN

    @property
    def inflight_segments(self) -> int:
        """Segments outstanding in the network."""
        return self.scoreboard.inflight_segments

    @property
    def delivered_bytes(self) -> int:
        """Connection-lifetime delivered byte counter."""
        return self.delivery.delivered_bytes

    @property
    def srtt_ns(self) -> Optional[int]:
        """Smoothed RTT (None before the first sample)."""
        return self.rtt.srtt_ns

    @property
    def min_rtt_ns(self) -> Optional[int]:
        """Windowed minimum RTT (None before the first sample)."""
        return self.min_rtt.min_rtt_ns

    @property
    def pacing_active(self) -> bool:
        """Whether transmissions are paced (mode x CC resolution)."""
        mode = self.config.pacing_mode
        if mode == PacingMode.AUTO:
            return self.cc.wants_pacing
        return mode == PacingMode.ON

    @property
    def retransmitted_segments(self) -> int:
        """Lifetime retransmitted segment count."""
        return self.scoreboard.total_retransmitted_segments

    @property
    def send_quantum_bytes(self) -> int:
        """Current autosized super-packet size (for CC cwnd budgets).

        With no rate estimate yet (``rate <= 0``) there is nothing to
        autosize against, so the GSO maximum applies — matching the
        kernel, where an unknown pacing rate leaves TSO unconstrained.
        """
        if self.pacer.rate_bps <= 0:
            return self.config.gso_max_bytes
        return tso_autosize_bytes(
            self.pacer.rate_bps, self.mss,
            self.cc.min_tso_segs(self), self.config.gso_max_bytes,
        )

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (the app connected and wrote data)."""
        self._maybe_copy()
        self._try_send()

    def close(self) -> None:
        """Stop transmitting and cancel timers (idempotent).

        Flows with scheduled lifetimes can be closed by a stop timer, by
        transfer completion, and again by end-of-run teardown; only the
        first close releases the CC module and cancels timers.
        """
        if self._closed:
            return
        self._closed = True
        self._pacing_timer.cancel()
        self._rto_timer.cancel()
        self.cc.release(self)

    @property
    def closed(self) -> bool:
        """True once the connection was closed (no further transmission)."""
        return self._closed

    # -- sendmsg copy-ahead pipeline ---------------------------------------------

    def _unsent_copied_bytes(self) -> int:
        """Copied-but-unsent bytes sitting in the socket."""
        return self.copied_seq - self.snd_nxt

    def _maybe_copy(self) -> None:
        """Keep the socket's unsent buffer topped up (greedy sendmsg).

        One copy work item is outstanding at a time; each charges the
        per-byte cost in process context. Chunks are GSO-sized.
        """
        if self._copy_pending or self._closed:
            return
        headroom = self.config.sndbuf_unsent_bytes - self._unsent_copied_bytes()
        available = self.source.available_bytes(self.copied_seq)
        chunk = self.config.gso_max_bytes
        if headroom < chunk:
            chunk = headroom
        if available < chunk:
            chunk = available
        if chunk <= 0:
            return
        self._copy_pending = True
        cycles = self.services.costs.copy_cycles(chunk)

        def copied() -> None:
            self._copy_pending = False
            if self._closed:
                return
            self.copied_seq += chunk
            self._try_send()
            self._maybe_copy()

        self.services.submit_work(self.flow_id, cycles, copied, "sendmsg")

    # -- transmit path --------------------------------------------------------------

    def _try_send(self, continuation: bool = False) -> None:
        """tcp_write_xmit: push what cwnd, pacing, and the app allow.

        *continuation* marks re-entry from a just-completed transmit of
        the same connection: within the TSQ burst budget, the next skb's
        work is queued at the head of the CPU queue, modelling how one
        ``tcp_write_xmit`` softirq run drains a socket before other
        queued work resumes.
        """
        if self._closed or self._xmit_pending:
            return
        if not continuation:
            self._burst_bytes = 0
        now = self.now

        # Retransmissions take priority and bypass pacing (they are rare
        # and urgent; the kernel subjects them to pacing but the
        # difference is negligible at the loss rates studied here).
        lost = self.scoreboard.next_lost_record()
        if lost is not None and self.inflight_segments < self.cwnd:
            self._submit_retransmit(lost)
            return

        pacing = self.pacing_active
        if pacing:
            if self.pacer.blocked(now):
                self._ensure_pacing_timer()
                return
            if not self.pacer.in_period:
                self.pacer.open_period(now)

        skb_bytes = self._next_skb_bytes(pacing)
        if skb_bytes <= 0:
            self._handle_nothing_to_send(pacing)
            return

        chain = continuation and self._burst_bytes < self.config.tsq_limit_bytes
        if continuation and not chain:
            self._burst_bytes = 0  # yield the CPU, start a fresh burst
        # The per-byte (copy/checksum) cost was already paid by sendmsg;
        # the transmit softirq pays the fixed per-skb path cost.
        cycles = (
            self._xmit_cycles_paced if pacing else self._xmit_cycles_unpaced
        )
        self._xmit_pending = True
        self.services.submit_work(
            self.flow_id,
            cycles,
            lambda: self._do_transmit(skb_bytes),
            "xmit",
            continuation=chain,
        )

    def _receive_window_bytes(self) -> int:
        """Bytes the receiver's advertised window still permits."""
        allowed = self.scoreboard.snd_una + self.snd_wnd - self.snd_nxt
        return allowed if allowed > 0 else 0

    def _next_skb_bytes(self, pacing: bool) -> int:
        """Size of the next super-packet, honouring every bound.

        Paced connections send *one* super-packet per pacing period (as
        TCP's internal pacer does), sized up to the period budget —
        ``stride × autosize goal`` bytes accumulate during the longer
        idle and go out as one larger buffer, bounded by cwnd and the
        GSO maximum. Unpaced connections use the plain TSO autosize.
        """
        window_segs = self.cwnd - self.inflight_segments
        if window_segs <= 0:
            return 0
        allowed = window_segs * self.mss
        if pacing:
            bound = self.pacer.budget_remaining
            if bound < allowed:
                allowed = bound
            bound = self.config.gso_max_bytes
            if bound < allowed:
                allowed = bound
        else:
            bound = self.send_quantum_bytes
            if bound < allowed:
                allowed = bound
        bound = self._unsent_copied_bytes()
        if bound < allowed:
            allowed = bound
        bound = self._receive_window_bytes()
        if bound < allowed:
            allowed = bound
        if allowed < self.mss:
            return 0
        return (allowed // self.mss) * self.mss

    def _do_transmit(self, planned_bytes: int) -> None:
        """CPU work completed: emit the packet (revalidating bounds)."""
        self._xmit_pending = False
        if self._closed:
            return
        now = self.now
        pacing = self.pacing_active
        skb_bytes = self._revalidated_bytes(pacing)
        if planned_bytes < skb_bytes:
            skb_bytes = planned_bytes
        skb_bytes = (skb_bytes // self.mss) * self.mss
        if skb_bytes <= 0:
            # Window shrank while the CPU was busy; cycles were spent for
            # nothing (as on real systems). Try again from the top.
            self._handle_nothing_to_send(pacing)
            self._try_send()
            return

        record = self.delivery.send_record(
            now,
            self.snd_nxt,
            self.snd_nxt + skb_bytes,
            skb_bytes // self.mss,
            self.scoreboard.has_inflight,
            self._unsent_copied_bytes() - skb_bytes <= 0
            and self.source.available_bytes(self.copied_seq) <= 0,
        )
        self.scoreboard.on_transmit(record)
        packet = PACKET_POOL.acquire_data(
            self.flow_id, self.snd_nxt, skb_bytes, self.mss, now
        )
        self.snd_nxt += skb_bytes
        self.services.send_packet(packet)

        self._burst_bytes += skb_bytes
        if pacing and self.pacer.in_period:
            # One socket buffer per pacing period (§6.1): consume and
            # close immediately; the next send waits for the idle time.
            self.pacer.consume(skb_bytes)
            self._close_pacing_period()
        if not self._rto_timer.pending:
            self._arm_rto()
        self._maybe_copy()  # refill the drained unsent buffer
        self._try_send(continuation=True)

    def _revalidated_bytes(self, pacing: bool) -> int:
        window_segs = self.cwnd - self.inflight_segments
        if window_segs <= 0:
            return 0
        allowed = window_segs * self.mss
        if pacing and self.pacer.in_period:
            bound = self.pacer.budget_remaining
            if bound < allowed:
                allowed = bound
        bound = self._receive_window_bytes()
        if bound < allowed:
            allowed = bound
        bound = self._unsent_copied_bytes()
        if bound < allowed:
            allowed = bound
        return allowed

    def _handle_nothing_to_send(self, pacing: bool) -> None:
        """Bookkeeping when the write path found nothing sendable.

        A pacing period ends as soon as the sender cannot continue it —
        whether the period budget is spent or cwnd/rwnd/app data ran out.
        One burst per period, then idle: this is what bounds the data per
        pacing period by the instantaneous window, producing the
        socket-buffer-saturation collapse of Table 2 at large strides.
        A period in which nothing at all was sent is abandoned without
        idling (the ACK clock resumes transmission).
        """
        if not pacing or not self.pacer.in_period:
            return
        if self.pacer.period_bytes_sent > 0:
            self._close_pacing_period()
        else:
            self.pacer.abandon_period()

    def _close_pacing_period(self) -> None:
        idle = self.pacer.close_period(self.now)
        if idle > 0:
            self._pacing_timer.start(idle)

    def _ensure_pacing_timer(self) -> None:
        if not self._pacing_timer.pending:
            self._pacing_timer.start_at(self.pacer.next_send_at_ns)

    def _on_pacing_timer(self) -> None:
        """Pacing hrtimer expired: charge the fire cost, then resume."""
        if self._closed:
            return
        self.services.submit_work(
            self.flow_id,
            self.services.costs.pacing_timer_fire,
            self._try_send,
            "pacing-timer",
            priority=0,
        )

    # -- retransmission ------------------------------------------------------------

    def _submit_retransmit(self, record: TxRecord) -> None:
        costs = self.services.costs
        nbytes = record.length
        cycles = costs.retransmit_fixed + costs.xmit_cycles(nbytes)
        self._xmit_pending = True

        def do_retransmit() -> None:
            self._xmit_pending = False
            if self._closed or record.sacked:
                self._try_send()
                return
            self.scoreboard.on_retransmit(record)
            record.last_sent_ns = self.now
            packet = PACKET_POOL.acquire_data(
                self.flow_id, record.seq, record.length, self.mss, self.now,
                is_retransmission=True,
            )
            self.services.send_packet(packet)
            self._arm_rto()
            self._try_send(continuation=True)

        self.services.submit_work(self.flow_id, cycles, do_retransmit, "retx")

    # -- ACK path ----------------------------------------------------------------------

    def on_ack_packet(self, packet: Packet) -> None:
        """Process one ACK (called by the stack after the CPU charge)."""
        if self._closed:
            return
        now = self.now
        self.acks_processed += 1
        prior_inflight = self.inflight_segments
        prior_una = self.scoreboard.snd_una
        self.snd_wnd = packet.rwnd

        # One fused call applies the ACK to the scoreboard, credits the
        # delivered counters, and builds the stamped rate sample (the
        # compiled kernel does all of it in C). The scoreboard consumes
        # the SACK list by value (it never stores it), so the pooled
        # ACK's list is passed without a copy.
        rs, newly_acked_bytes = self.scoreboard.process_ack(
            self.delivery,
            packet.ack,
            packet.sack_blocks,
            now,
            prior_inflight,
            self.min_rtt.expired(now),
        )
        self.bytes_acked += newly_acked_bytes
        if prior_una == 0 and packet.ack > 0 and self.on_first_byte_acked:
            self.on_first_byte_acked()

        if rs.rtt_ns > 0:
            self.rtt.update(rs.rtt_ns)
            if self.min_rtt.update(rs.rtt_ns, now):
                self.cc.on_min_rtt_update(self, self.min_rtt.min_rtt_ns or rs.rtt_ns)
            if self.on_rtt_sample is not None:
                self.on_rtt_sample(rs.rtt_ns)

        self._update_recovery_state(packet.ack, rs.newly_lost_segments)
        self.cc.cong_control(self, rs)
        cwnd = self.cwnd
        if cwnd > self.config.max_cwnd:
            cwnd = self.config.max_cwnd
        if cwnd < 2:
            cwnd = 2
        self.cwnd = cwnd
        self._update_rates()
        self._manage_rto_after_ack()
        self._try_send()
        if (
            self.on_complete is not None
            and self.complete_at_bytes is not None
            and self.scoreboard.snd_una >= self.complete_at_bytes
        ):
            # Fire exactly once; the callback typically closes us, so it
            # runs after this ACK's send/RTO bookkeeping is finished.
            callback, self.on_complete = self.on_complete, None
            callback()

    def _update_recovery_state(self, ack_seq: int, newly_lost: int) -> None:
        if self.state == OPEN:
            if newly_lost > 0:
                self.state = RECOVERY
                self.high_seq = self.snd_nxt
                self.recovery_episodes += 1
                new_ssthresh = self.cc.ssthresh(self)
                self.ssthresh = max(2, new_ssthresh)
                self.cwnd = min(self.cwnd, max(self.ssthresh, 2))
                self.cc.on_enter_recovery(self)
        elif ack_seq >= self.high_seq:
            self.state = OPEN
            self._rto_backoff = 1
            self.scoreboard.clear_loss_marks()
            self.cc.on_exit_recovery(self)

    # -- RTO ---------------------------------------------------------------------------

    def _arm_rto(self) -> None:
        """Arm the RTO relative to the earliest outstanding transmission.

        Mirrors ``tcp_rearm_rto``: re-arming on every ACK must not push
        the deadline out indefinitely while SACKs stream in — the timer
        expires ``rto`` after the oldest unacked packet's last
        (re)transmission, so a lost retransmission is eventually retried.
        """
        timeout = self.rtt.rto_ns * self._rto_backoff
        oldest = self.scoreboard.oldest_unacked_record()
        now = self.now
        base = oldest.last_sent_ns if oldest is not None else now
        deadline = base + timeout
        floor = now + 1
        self._rto_timer.start_at(deadline if deadline > floor else floor)

    def _manage_rto_after_ack(self) -> None:
        if self.scoreboard.has_inflight:
            self._arm_rto()
        else:
            self._rto_timer.cancel()

    def _on_rto_timer(self) -> None:
        if self._closed or not self.scoreboard.has_inflight:
            return
        self.services.submit_work(
            self.flow_id, self.services.costs.rto_fire, self._do_rto, "rto",
            priority=0,
        )

    def _do_rto(self) -> None:
        if self._closed or not self.scoreboard.has_inflight:
            return
        self.rto_count += 1
        self.state = LOSS
        self.high_seq = self.snd_nxt
        self.scoreboard.mark_all_lost()
        self.ssthresh = max(2, self.cc.ssthresh(self))
        self.cwnd = 1
        self.cc.on_rto(self)
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self._arm_rto()
        if self.pacer.in_period:
            self.pacer.abandon_period()
        self.pacer.next_send_at_ns = self.now
        self._try_send()

    # -- rates ----------------------------------------------------------------------------

    def internal_pacing_rate_bps(self) -> float:
        """TCP's built-in pacing-rate formula (§5.2.2's Cubic+pacing)."""
        srtt = self.srtt_ns
        if not srtt:
            return 0.0
        factor = _PACING_SS_RATIO if self.in_slow_start else _PACING_CA_RATIO
        return factor * self.cwnd * self.mss * 8 * SEC / srtt

    def _update_rates(self) -> None:
        rate = self.cc.pacing_rate_bps(self)
        if rate is None:
            rate = self.internal_pacing_rate_bps()
        self.pacer.rate_bps = rate


class StackServicesProtocol:
    """What a :class:`TcpSender` needs from its host stack (documentation
    class; the concrete provider is :class:`repro.tcp.stack.MobileTcpStack`).
    """

    loop = None  # type: ignore[assignment]
    costs = None  # type: ignore[assignment]

    def submit_work(
        self, flow_id: int, cycles: int, callback, name: str, priority: int = 1
    ) -> None:
        """Charge *cycles* to the device CPU, then run *callback*.

        ``priority`` 0 is interrupt/RX-class work (ACKs, timer fires);
        1 is the bulk transmit path.
        """
        raise NotImplementedError

    def send_packet(self, packet: Packet) -> None:
        """Hand a packet to the device's qdisc/NIC."""
        raise NotImplementedError
