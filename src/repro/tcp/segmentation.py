"""TSO/GSO automatic sizing (``tcp_tso_autosize``).

Linux sizes each transmitted super-packet to roughly one millisecond of
data at the socket's pacing rate, bounded below by a minimum segment
count (BBR uses 2 at sub-gigabit rates) and above by the GSO maximum.
This is the coupling at the heart of the paper's multi-connection result:
more connections → lower per-connection pacing rate → *smaller* skbs →
more pacing timer fires and fixed costs per byte of goodput.
"""

from __future__ import annotations

__all__ = ["GSO_MAX_BYTES", "PACING_SHIFT", "tso_autosize_bytes", "tso_autosize_segments"]

#: Maximum bytes a single GSO super-packet may carry (64 KB, like Linux).
GSO_MAX_BYTES = 65536

#: ``sk_pacing_shift``: the autosize goal is ``rate >> PACING_SHIFT``
#: bytes, i.e. about 1 ms of data at the pacing rate (Linux default 10).
PACING_SHIFT = 10


def tso_autosize_bytes(
    pacing_rate_bps: float,
    mss: int,
    min_tso_segs: int = 2,
    gso_max_bytes: int = GSO_MAX_BYTES,
) -> int:
    """Byte goal for one super-packet at *pacing_rate_bps*.

    Mirrors ``tcp_tso_autosize``: ~1 ms of data at the pacing rate,
    rounded to whole MSS segments, clamped to
    ``[min_tso_segs * mss, gso_max_bytes]``.
    """
    if mss <= 0:
        raise ValueError("mss must be positive")
    # Hot path (read on every pacing-period budget check): conditionals
    # instead of max()/min() builtin calls, same clamping.
    rate_bytes_per_sec = (pacing_rate_bps if pacing_rate_bps > 0.0 else 0.0) / 8.0
    goal = int(rate_bytes_per_sec) >> PACING_SHIFT
    floor_segs = min_tso_segs if min_tso_segs > 1 else 1
    segs = goal // mss
    if segs < floor_segs:
        segs = floor_segs
    nbytes = segs * mss
    max_segs = gso_max_bytes // mss
    if max_segs < 1:
        max_segs = 1
    cap = max_segs * mss
    return nbytes if nbytes < cap else cap


def tso_autosize_segments(
    pacing_rate_bps: float,
    mss: int,
    min_tso_segs: int = 2,
    gso_max_bytes: int = GSO_MAX_BYTES,
) -> int:
    """Segment-count form of :func:`tso_autosize_bytes`."""
    return tso_autosize_bytes(pacing_rate_bps, mss, min_tso_segs, gso_max_bytes) // mss
