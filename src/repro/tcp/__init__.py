"""Event-driven reimplementation of the Linux TCP sender/receiver pair.

Highlights:

* :class:`~repro.tcp.connection.TcpSender` — cwnd, SACK recovery, RTO,
  delivery-rate sampling, TSO autosizing, internal pacing with the
  paper's *pacing stride*,
* :class:`~repro.tcp.receiver.TcpReceiverEndpoint` — reassembly + SACKs,
* :class:`~repro.tcp.stack.MobileTcpStack` — binds everything to the
  simulated device CPU,
* :class:`~repro.tcp.pacing.PacingController` — Eq. 1/Eq. 2 of the paper.
"""

from .connection import (
    TCP_INIT_CWND,
    FiniteSource,
    InfiniteSource,
    SocketConfig,
    TcpSender,
)
from .pacing import PacingController, PacingMode
from .rate_sample import DeliveryRateEstimator, RateSample, TxRecord
from .receiver import TcpReceiverEndpoint
from .rtt import MinRttFilter, RttEstimator
from .scoreboard import AckOutcome, Scoreboard
from .segmentation import GSO_MAX_BYTES, PACING_SHIFT, tso_autosize_bytes, tso_autosize_segments
from .stack import MobileTcpStack, ServerHost

__all__ = [
    "TcpSender",
    "SocketConfig",
    "InfiniteSource",
    "FiniteSource",
    "TCP_INIT_CWND",
    "PacingController",
    "PacingMode",
    "RateSample",
    "TxRecord",
    "DeliveryRateEstimator",
    "TcpReceiverEndpoint",
    "RttEstimator",
    "MinRttFilter",
    "Scoreboard",
    "AckOutcome",
    "GSO_MAX_BYTES",
    "PACING_SHIFT",
    "tso_autosize_bytes",
    "tso_autosize_segments",
    "MobileTcpStack",
    "ServerHost",
]
