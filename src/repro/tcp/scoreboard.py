"""Sender-side SACK scoreboard and loss detection.

Tracks every transmitted-but-not-cumulatively-acked
:class:`~repro.tcp.rate_sample.TxRecord`, applies cumulative and selective
acknowledgments, and marks losses using the classic dup-threshold rule
generalized to byte ranges (a record is lost once data at least
``reorder_degree`` segments beyond it has been SACKed — the FACK-style
rule Linux applies when SACK is in use).

Counters (``packets_out``, ``sacked_out``, ``lost_out``, ``retrans_out``)
are *derived* from the record list (immune to incremental-bookkeeping
bugs) and cached behind a dirty flag, so the O(records) refresh runs at
most once per mutation rather than once per read.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from ..kernel import compiled_for
from .rate_sample import DeliveryRateEstimator, RateSample, TxRecord

__all__ = ["Scoreboard", "AckOutcome"]


class AckOutcome:
    """What one ACK did to the scoreboard (consumed by the sender)."""

    __slots__ = (
        "newly_acked_bytes",
        "newly_acked_segments",
        "newly_sacked_bytes",
        "newly_sacked_segments",
        "newly_lost_segments",
        "newest_delivered_record",
    )

    def __init__(self) -> None:
        self.newly_acked_bytes = 0
        self.newly_acked_segments = 0
        self.newly_sacked_bytes = 0
        self.newly_sacked_segments = 0
        self.newly_lost_segments = 0
        #: the most recently *sent* record that this ACK delivered
        self.newest_delivered_record: Optional[TxRecord] = None

    @property
    def delivered_bytes(self) -> int:
        """Total bytes newly delivered (cumulative + selective)."""
        return self.newly_acked_bytes + self.newly_sacked_bytes


class Scoreboard:
    """Ordered collection of in-flight transmission records."""

    def __new__(cls, *args, **kwargs):
        # Kernel routing: a scoreboard built on a compiled-kernel loop
        # *is* the C implementation (construction is the only selection
        # point; see repro.kernel). Instrumented runs stay pure — the C
        # kernel has no tracer hooks. Subclasses always stay pure.
        if cls is Scoreboard:
            loop = kwargs.get("loop", args[2] if len(args) > 2 else None)
            if loop is not None:
                tracer = kwargs.get(
                    "tracer", args[3] if len(args) > 3 else None
                )
                ck = compiled_for(loop)
                if ck is not None and (tracer is None or not tracer.enabled):
                    return ck.Scoreboard(*args, **kwargs)
        return super().__new__(cls)

    def __init__(self, mss: int, reorder_degree: int = 3, loop=None, tracer=None):
        # loop/tracer are kernel-routing keys consumed by __new__; the
        # pure scoreboard never schedules or traces.
        self.mss = int(mss)
        if self.mss < 1:
            raise ValueError("mss must be >= 1")
        self.reorder_degree = int(reorder_degree)
        self._records: Deque[TxRecord] = deque()
        self.snd_una = 0
        self.highest_sacked = 0
        # lifetime stats
        self.total_retransmitted_segments = 0
        # derived-counter cache: recomputed in one pass after mutations
        self._counters_dirty = True
        self._cached_counters = (0, 0, 0, 0)
        # Fast path for next_lost_record(): False guarantees no record is
        # (lost and not retransmitted and not sacked), letting the common
        # no-loss case skip the O(records) scan.
        self._have_lost = False

    # -- derived counters (kernel names, in segments) -------------------------
    #
    # The counters are derived from the record list (immune to
    # incremental-bookkeeping bugs) but cached: every public mutator
    # marks them dirty and one O(records) pass refreshes all four.

    def _counters(self) -> tuple:
        if self._counters_dirty:
            packets = sacked = lost = retrans = 0
            for r in self._records:
                packets += r.segments
                sacked += r.sacked_segments
                if not r.sacked:
                    remaining = r.segments - r.sacked_segments
                    if r.lost:
                        lost += remaining
                    if r.retransmitted:
                        retrans += remaining
            self._cached_counters = (packets, sacked, lost, retrans)
            self._counters_dirty = False
        return self._cached_counters

    @property
    def packets_out(self) -> int:
        """Segments sent and not yet cumulatively acked."""
        return self._counters()[0]

    @property
    def sacked_out(self) -> int:
        """Segments selectively acked."""
        return self._counters()[1]

    @property
    def lost_out(self) -> int:
        """Segments marked lost and not (re)delivered."""
        return self._counters()[2]

    @property
    def retrans_out(self) -> int:
        """Retransmitted segments still outstanding."""
        return self._counters()[3]

    @property
    def inflight_segments(self) -> int:
        """Segments considered in the network (tcp_packets_in_flight)."""
        # Hot path (read per transmit attempt and per ACK): one counter
        # fetch instead of four property round-trips.
        packets, sacked, lost, retrans = self._counters()
        inflight = packets - sacked - lost + retrans
        return inflight if inflight > 0 else 0

    @property
    def has_inflight(self) -> bool:
        """True while any record is outstanding."""
        return bool(self._records)

    @property
    def records(self) -> Iterable[TxRecord]:
        """Outstanding records, lowest sequence first (read-only view)."""
        return iter(self._records)

    def oldest_unacked_record(self) -> Optional[TxRecord]:
        """The record at ``snd_una`` (None when everything is acked)."""
        return self._records[0] if self._records else None

    # -- transmit --------------------------------------------------------------

    def on_transmit(self, record: TxRecord) -> None:
        """Register a freshly sent record (sequences must be in order)."""
        self._counters_dirty = True
        if self._records and record.seq < self._records[-1].end_seq:
            raise ValueError("out-of-order original transmission")
        self._records.append(record)

    def on_retransmit(self, record: TxRecord) -> None:
        """Account a retransmission of *record* (previously marked lost)."""
        self._counters_dirty = True
        record.retransmitted = True
        self.total_retransmitted_segments += record.segments - record.sacked_segments

    # -- acknowledgment ----------------------------------------------------------

    def on_ack(self, ack_seq: int, sack_blocks: List[Tuple[int, int]]) -> AckOutcome:
        """Apply one ACK; returns the delta it caused."""
        self._counters_dirty = True
        outcome = AckOutcome()
        self._apply_cumulative(ack_seq, outcome)
        self._apply_sacks(sack_blocks, outcome)
        self._detect_losses(outcome)
        return outcome

    def process_ack(
        self,
        delivery: DeliveryRateEstimator,
        ack_seq: int,
        sack_blocks: List[Tuple[int, int]],
        now_ns: int,
        prior_inflight: int,
        min_rtt_expired: bool,
    ) -> Tuple[RateSample, int]:
        """Apply one ACK and produce its fully stamped rate sample.

        Fuses :meth:`on_ack`, the delivered-counter credit, and the
        sample construction into one call — the per-ACK seam the
        compiled kernel implements in C, so a compiled run pays a single
        dispatch per ACK. Returns ``(rate_sample, newly_acked_bytes)``.
        """
        outcome = self.on_ack(ack_seq, sack_blocks)
        delivered = outcome.delivered_bytes
        if delivered > 0:
            delivery.on_delivered(delivered, now_ns)
        record = outcome.newest_delivered_record
        if record is not None and delivered > 0:
            rs = delivery.make_sample(record, now_ns)
        else:
            rs = RateSample(
                delivered_total=delivery.delivered_bytes, ack_time_ns=now_ns
            )
        rs.prior_inflight_segments = prior_inflight
        rs.newly_acked_segments = outcome.newly_acked_segments
        rs.newly_sacked_segments = outcome.newly_sacked_segments
        rs.newly_lost_segments = outcome.newly_lost_segments
        rs.min_rtt_expired = min_rtt_expired
        return rs, outcome.newly_acked_bytes

    def mark_all_lost(self) -> int:
        """RTO: every outstanding, un-SACKed segment is presumed lost.

        Returns the number of segments newly marked lost. Retransmission
        marks are cleared so loss recovery may resend the data.
        """
        self._counters_dirty = True
        newly_lost = 0
        for record in self._records:
            if record.sacked:
                continue
            if not record.lost:
                record.lost = True
                newly_lost += record.segments - record.sacked_segments
            record.retransmitted = False
            self._have_lost = True
        return newly_lost

    def next_lost_record(self) -> Optional[TxRecord]:
        """First record marked lost and not yet retransmitted."""
        if not self._have_lost:
            return None
        for record in self._records:
            if record.lost and not record.retransmitted and not record.sacked:
                return record
        # Fruitless scan: eligibility can only reappear via a new lost
        # mark (_detect_losses / mark_all_lost), which re-sets the flag.
        self._have_lost = False
        return None

    def clear_loss_marks(self) -> None:
        """Forget loss/retransmission marks (recovery episode ended)."""
        self._counters_dirty = True
        self._have_lost = False
        for record in self._records:
            record.lost = False
            record.retransmitted = False

    # -- internals ----------------------------------------------------------------

    def _apply_cumulative(self, ack_seq: int, outcome: AckOutcome) -> None:
        if ack_seq <= self.snd_una:
            return
        while self._records and self._records[0].seq < ack_seq:
            record = self._records[0]
            if record.end_seq <= ack_seq:
                self._records.popleft()
                unsacked = record.segments - record.sacked_segments
                outcome.newly_acked_segments += unsacked
                acked = record.length - record.sacked_segments * self.mss
                if acked > 0:
                    outcome.newly_acked_bytes += acked
                self._note_delivered(record, outcome)
            else:
                # Partial ACK inside a super-packet (router split): shrink
                # the head. Sub-MSS remainders stay with the record.
                acked_bytes = ack_seq - record.seq
                acked_segs = acked_bytes // self.mss
                if acked_segs <= 0:
                    break
                chopped = acked_segs * self.mss
                record.seq += chopped
                record.segments -= acked_segs
                record.sacked_segments = min(record.sacked_segments, record.segments)
                outcome.newly_acked_segments += acked_segs
                outcome.newly_acked_bytes += chopped
                self._note_delivered(record, outcome)
                break
        if ack_seq > self.snd_una:
            self.snd_una = ack_seq

    def _apply_sacks(self, blocks: List[Tuple[int, int]], outcome: AckOutcome) -> None:
        for start, end in blocks:
            if end <= self.snd_una:
                continue
            self.highest_sacked = max(self.highest_sacked, end)
            for record in self._records:
                if record.seq >= end:
                    break
                overlap = min(record.end_seq, end) - max(record.seq, start)
                if overlap <= 0:
                    continue
                covered_segs = min(record.segments, -(-overlap // self.mss))
                newly = covered_segs - record.sacked_segments
                if newly <= 0:
                    continue
                record.sacked_segments = covered_segs
                outcome.newly_sacked_segments += newly
                outcome.newly_sacked_bytes += newly * self.mss
                if record.sacked_segments >= record.segments:
                    record.sacked = True
                    record.lost = False
                self._note_delivered(record, outcome)

    def _detect_losses(self, outcome: AckOutcome) -> None:
        """FACK-style: data SACKed >= reorder_degree segments ahead => lost."""
        if self.highest_sacked <= self.snd_una:
            return
        threshold = self.highest_sacked - self.reorder_degree * self.mss
        for record in self._records:
            if record.seq >= threshold:
                break
            if record.sacked or record.lost or record.retransmitted:
                continue
            if record.end_seq > threshold:
                continue
            record.lost = True
            self._have_lost = True
            outcome.newly_lost_segments += record.segments - record.sacked_segments

    @staticmethod
    def _note_delivered(record: TxRecord, outcome: AckOutcome) -> None:
        newest = outcome.newest_delivered_record
        if newest is None or record.sent_ns >= newest.sent_ns:
            outcome.newest_delivered_record = record
