"""TCP internal packet pacing, with the paper's *pacing stride* (§6).

Linux's internal pacing sends one socket buffer per pacing period: after
a send it computes an idle time (Eq. 1)

    ``idleTime = socketBufferLength / pacingRate``

arms an hrtimer, and blocks transmission until expiry. Every period costs
a timer fire plus a socket reschedule — the overhead the paper identifies.

The *pacing stride* modification (Eq. 2) scales the idle time while
letting the same factor more data go out per period, so the long-run
pacing rate is unchanged but the timer frequency drops by the stride:

* per-period send budget  = ``stride × autosize_goal`` bytes,
* idle time               = ``stride × autosize_goal / pacingRate``.

When the congestion window (or the socket buffer) caps the per-period
burst below the budget, the idle time still reflects the intended budget
— which is exactly the saturation regime of the paper's Table 2, where
throughput collapses for over-large strides.

:class:`PacingController` is pure policy (no timers, no CPU accounting);
the connection drives it and owns the timer so that timer-fire CPU costs
are charged in one place.
"""

from __future__ import annotations

from typing import Optional

from ..units import SEC
from .segmentation import GSO_MAX_BYTES, tso_autosize_bytes

__all__ = ["PacingController", "PacingMode"]


class PacingMode:
    """How pacing is decided for a connection (§5's experiment knobs)."""

    #: follow the congestion-control module (BBR: on, Cubic: off)
    AUTO = "auto"
    #: force pacing on (the §5.2.2 Cubic-with-pacing experiments)
    ON = "on"
    #: force pacing off (the §5.2.1 BBR-without-pacing experiments)
    OFF = "off"

    ALL = (AUTO, ON, OFF)


class PacingController:
    """Per-connection pacing state: rate, stride, and period accounting."""

    __slots__ = (
        "mss",
        "stride",
        "min_tso_segs",
        "gso_max_bytes",
        "rate_bps",
        "next_send_at_ns",
        "_period_budget",
        "_period_opened_ns",
        "periods",
        "idle_ns_total",
        "bytes_per_period_total",
        "_period_bytes",
        "_goal_rate_bps",
        "_goal_bytes",
    )

    def __init__(
        self,
        mss: int,
        stride: float = 1.0,
        min_tso_segs: int = 2,
        gso_max_bytes: int = GSO_MAX_BYTES,
    ):
        if stride < 1.0:
            raise ValueError("pacing stride must be >= 1")
        self.mss = int(mss)
        self.stride = float(stride)
        self.min_tso_segs = int(min_tso_segs)
        self.gso_max_bytes = int(gso_max_bytes)
        #: current pacing rate, bits/s (set by the CC module every ACK)
        self.rate_bps: float = 0.0
        #: absolute time before which no new period may open
        self.next_send_at_ns: int = 0
        #: bytes still sendable in the currently open period (None = closed)
        self._period_budget: Optional[int] = None
        self._period_opened_ns: int = 0
        # stats
        self.periods = 0
        self.idle_ns_total = 0
        self.bytes_per_period_total = 0
        self._period_bytes = 0
        # memoized autosize goal: goal_bytes() is a pure function of the
        # rate (mss/min_tso/gso are fixed per controller) but is read
        # several times between rate updates — open, close, and every
        # budget check of a period.
        self._goal_rate_bps = -1.0
        self._goal_bytes = 0

    # -- queries ---------------------------------------------------------------

    def blocked(self, now_ns: int) -> bool:
        """True while pacing forbids opening a new period."""
        return self._period_budget is None and now_ns < self.next_send_at_ns

    def goal_bytes(self) -> int:
        """The 1x autosize goal at the current rate (one skb's worth)."""
        rate = self.rate_bps
        if rate != self._goal_rate_bps:
            self._goal_rate_bps = rate
            self._goal_bytes = tso_autosize_bytes(
                rate, self.mss, self.min_tso_segs, self.gso_max_bytes
            )
        return self._goal_bytes

    def period_budget_bytes(self) -> int:
        """Bytes allowed in one pacing period (= stride × goal)."""
        return int(self.stride * self.goal_bytes())

    @property
    def in_period(self) -> bool:
        """True between :meth:`open_period` and :meth:`close_period`."""
        return self._period_budget is not None

    @property
    def budget_remaining(self) -> int:
        """Bytes left in the open period (0 when closed)."""
        return self._period_budget or 0

    @property
    def period_bytes_sent(self) -> int:
        """Bytes sent so far in the currently open period."""
        return self._period_bytes if self.in_period else 0

    # -- period life cycle --------------------------------------------------------

    def open_period(self, now_ns: int) -> int:
        """Open a pacing period; returns its byte budget."""
        if self.blocked(now_ns):
            raise RuntimeError("pacing period opened while blocked")
        self._period_budget = self.period_budget_bytes()
        self._period_bytes = 0
        self._period_opened_ns = now_ns
        return self._period_budget

    def consume(self, nbytes: int) -> None:
        """Charge *nbytes* sent against the open period."""
        if self._period_budget is None:
            raise RuntimeError("consume() outside a pacing period")
        budget = self._period_budget - nbytes
        self._period_budget = budget if budget > 0 else 0
        self._period_bytes += nbytes

    def close_period(self, now_ns: int) -> int:
        """Close the period; returns the idle time (ns) before the next.

        The idle time is computed from the *intended* period budget (Eq. 1
        with Eq. 2's stride scaling), so under-filled periods — e.g. when
        cwnd caps the burst — still idle the full stride, reproducing the
        socket-buffer-saturation regime of Table 2.

        The next period is scheduled ``idle`` after the period *opened*,
        not after the transmit work finished: the pacing clock runs
        concurrently with the stack's CPU work (the hrtimer is free-
        running hardware; user-space copies pipeline on other cores).
        When the CPU work exceeds the idle time the returned delay is 0
        and the sender is CPU-bound rather than pacing-bound — the
        paper's overload regime.
        """
        if self._period_budget is None:
            raise RuntimeError("close_period() without an open period")
        self._period_budget = None
        if self.rate_bps <= 0:
            self.next_send_at_ns = now_ns
            return 0
        intended = self.period_budget_bytes()
        idle_ns = int(intended * 8 * SEC / self.rate_bps)
        self.next_send_at_ns = self._period_opened_ns + idle_ns
        self.periods += 1
        self.idle_ns_total += idle_ns
        self.bytes_per_period_total += self._period_bytes
        idle = self.next_send_at_ns - now_ns
        return idle if idle > 0 else 0

    def abandon_period(self) -> None:
        """Close the period without pacing (nothing was sent)."""
        self._period_budget = None

    # -- reporting -------------------------------------------------------------------

    @property
    def mean_idle_ns(self) -> float:
        """Average idle time per closed period."""
        return self.idle_ns_total / self.periods if self.periods else 0.0

    @property
    def mean_period_bytes(self) -> float:
        """Average bytes actually sent per period (Table 2's skbuff length)."""
        return self.bytes_per_period_total / self.periods if self.periods else 0.0
