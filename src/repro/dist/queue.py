"""Shared-filesystem task queue for distributed sweeps.

The queue is a directory that any number of processes — on one box or
on many hosts sharing a filesystem — can cooperate through without a
broker, a database, or a network service. All coordination reduces to
two primitives every POSIX filesystem gives us:

* **atomic publish** — a task is a JSON file written to a temp name and
  ``os.replace``d into ``tasks/``, so readers never observe a partial
  task;
* **atomic claim** — a worker claims a task by ``os.replace``-ing it
  from ``tasks/`` into ``leases/``. Rename is atomic within a
  filesystem: exactly one contender wins, every loser gets ``ENOENT``
  and moves to the next file. No locks, no fencing tokens.

A claimed task carries a **lease**: the winning worker stamps the lease
file with its id and an expiry, and renews the stamp while it computes.
A worker that dies (SIGKILL, OOM, host loss) simply stops renewing; the
coordinator notices the expired lease and moves the task back to
``tasks/`` for someone else. Because every grid point is deterministic
and results land in the content-addressed cache (:mod:`repro.cache`),
re-dispatch is idempotent: the worst case of the at-least-once protocol
is a point computed twice with bit-identical results.

Layout under the queue root::

    manifest.json        coordinator-written sweep descriptor (grid
                         digest, code fingerprint, kernel, cache root)
    tasks/chunk-*.json   published, unclaimed chunks
    leases/chunk-*.json  claimed chunks (payload + lease stamp)
    done/chunk-*.json    per-chunk completion records (per-point status)
    workers/<id>.json    per-worker heartbeat/progress snapshots
    ledgers/<id>/        per-worker run ledgers (see ``repro runs merge``)
    stop                 sentinel: pull-workers drain and exit

Completion records and worker snapshots are also plain atomic-replace
JSON files, so the coordinator's poll loop only ever lists directories
and reads whole files — cheap enough to run every half second against a
10k-point sweep on NFS.

Clocks: lease expiry compares a wall-clock stamp written by the worker
against the reader's wall clock. Hosts sharing a queue are assumed
NTP-sane; the default lease (60 s) dwarfs realistic skew, and the only
cost of a wrong reclaim is duplicated deterministic work.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "QUEUE_FORMAT_VERSION",
    "Task",
    "TaskQueue",
    "QueueStateError",
    "new_worker_id",
    "write_json_atomic",
]

#: bumped when the task/manifest layout changes incompatibly
QUEUE_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_TASKS = "tasks"
_LEASES = "leases"
_DONE = "done"
_WORKERS = "workers"
_LEDGERS = "ledgers"
_STOP = "stop"

_CHUNK_PREFIX = "chunk-"


class QueueStateError(RuntimeError):
    """The queue directory disagrees with the sweep being coordinated."""


def new_worker_id() -> str:
    """A queue-unique worker id: host + pid + entropy.

    Host and pid make the id debuggable (you can see *where* a lease
    lives); the entropy suffix keeps ids unique across pid reuse and
    containers that all think they are ``localhost`` pid 1.
    """
    host = socket.gethostname().split(".")[0][:16] or "host"
    return f"{host}-{os.getpid()}-{os.urandom(2).hex()}"


def write_json_atomic(path: str, payload: Dict[str, Any]) -> None:
    """Write *payload* as JSON via a same-directory temp file + replace.

    Readers racing this write see either the old file or the new one,
    never a torn mix — the property every queue artifact relies on.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, separators=(",", ":")))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    """Read a JSON object, tolerating races (missing/partial -> None)."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


@dataclass
class Task:
    """One claimed chunk: its payload plus where its lease file lives."""

    name: str
    chunk: int
    #: ``[{"index": <grid index>, "spec": <wire dict>}, ...]``
    points: List[Dict[str, Any]]
    #: path of the lease file this worker holds
    lease_path: str
    worker_id: str
    #: wall-clock expiry of the current lease stamp
    expires_ts: float = 0.0
    #: set when a renewal discovered the lease was reclaimed from us
    lost: bool = field(default=False, compare=False)


class TaskQueue:
    """Coordinator/worker operations over one shared queue directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)

    # -- paths ---------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    @property
    def tasks_dir(self) -> str:
        return os.path.join(self.root, _TASKS)

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, _LEASES)

    @property
    def done_dir(self) -> str:
        return os.path.join(self.root, _DONE)

    @property
    def workers_dir(self) -> str:
        return os.path.join(self.root, _WORKERS)

    @property
    def stop_path(self) -> str:
        return os.path.join(self.root, _STOP)

    def ledger_dir(self, worker_id: str) -> str:
        """Where *worker_id* keeps its private run ledger.

        Per-worker directories exist because ``O_APPEND`` atomicity is a
        single-host guarantee — two hosts appending to one JSONL over
        NFS can interleave. Each worker appends alone;
        ``repro runs merge`` folds the shards afterwards.
        """
        return os.path.join(self.root, _LEDGERS, worker_id)

    def worker_ledger_dirs(self) -> List[str]:
        """Every per-worker ledger directory currently in the queue."""
        root = os.path.join(self.root, _LEDGERS)
        try:
            names = sorted(os.listdir(root))
        except OSError:
            return []
        return [os.path.join(root, n) for n in names
                if os.path.isdir(os.path.join(root, n))]

    # -- manifest / lifecycle ------------------------------------------------

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        """The sweep descriptor, or ``None`` when not yet published."""
        return _read_json(self.manifest_path)

    def prepare(self, manifest: Dict[str, Any]) -> None:
        """Initialize (or re-initialize) the queue for one sweep.

        A fresh directory is laid out and the manifest published. An
        existing queue is reused only when its manifest describes the
        **same grid** (``grid_digest`` matches) — the interrupted-sweep
        resume path; its stale tasks/leases/done/worker files are swept
        (completed points live on in the shared cache, which is the real
        checkpoint). A queue holding a *different* grid raises
        :class:`QueueStateError` instead of silently mixing sweeps.
        Per-worker ledgers survive re-preparation: they are history, not
        state.
        """
        existing = self.read_manifest()
        if existing is not None:
            theirs = existing.get("grid_digest")
            ours = manifest.get("grid_digest")
            if theirs != ours:
                raise QueueStateError(
                    f"queue {self.root} already holds a different sweep "
                    f"(grid {str(theirs)[:12]}... != {str(ours)[:12]}...); "
                    f"point --queue somewhere else or delete it"
                )
            for directory in (self.tasks_dir, self.leases_dir,
                              self.done_dir, self.workers_dir):
                self._clear_dir(directory)
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir,
                          self.workers_dir):
            os.makedirs(directory, exist_ok=True)
        try:
            os.unlink(self.stop_path)
        except OSError:
            pass
        write_json_atomic(self.manifest_path, manifest)

    @staticmethod
    def _clear_dir(directory: str) -> None:
        try:
            names = os.listdir(directory)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass

    def request_stop(self) -> None:
        """Tell pull-workers to drain and exit (idempotent)."""
        try:
            with open(self.stop_path, "w", encoding="utf-8") as fh:
                fh.write(str(time.time()))
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return os.path.exists(self.stop_path)

    # -- publish / claim / complete ------------------------------------------

    @staticmethod
    def chunk_filename(chunk: int) -> str:
        return f"{_CHUNK_PREFIX}{chunk:05d}.json"

    def publish(self, chunk: int, points: List[Dict[str, Any]]) -> str:
        """Publish one chunk as an unclaimed task file; returns its path."""
        payload = {
            "v": QUEUE_FORMAT_VERSION,
            "chunk": chunk,
            "points": points,
        }
        path = os.path.join(self.tasks_dir, self.chunk_filename(chunk))
        write_json_atomic(path, payload)
        return path

    def _task_names(self) -> List[str]:
        try:
            names = os.listdir(self.tasks_dir)
        except OSError:
            return []
        return sorted(n for n in names
                      if n.startswith(_CHUNK_PREFIX) and n.endswith(".json"))

    def pending_count(self) -> int:
        """Unclaimed task files currently published."""
        return len(self._task_names())

    def claim(self, worker_id: str, lease_s: float) -> Optional[Task]:
        """Claim the first available task, or ``None`` when none are free.

        The claim is the atomic rename from ``tasks/`` to ``leases/``;
        losing a race for one file just moves on to the next. The winner
        immediately stamps the lease file with its id and expiry so the
        coordinator can tell a live claim from an abandoned one.
        """
        for name in self._task_names():
            src = os.path.join(self.tasks_dir, name)
            dst = os.path.join(self.leases_dir, name)
            try:
                os.replace(src, dst)
            except OSError:
                continue  # lost the race (or task vanished); next one
            payload = _read_json(dst)
            if payload is None:
                continue  # torn by a concurrent reclaim; extremely unlikely
            expires = time.time() + lease_s
            payload["lease"] = {
                "worker": worker_id,
                "claimed_ts": time.time(),
                "expires_ts": expires,
            }
            write_json_atomic(dst, payload)
            return Task(
                name=name,
                chunk=int(payload.get("chunk", -1)),
                points=list(payload.get("points", [])),
                lease_path=dst,
                worker_id=worker_id,
                expires_ts=expires,
            )
        return None

    def renew(self, task: Task, lease_s: float) -> bool:
        """Extend *task*'s lease; returns whether we still own it.

        A worker that was presumed dead (its lease expired and was
        reclaimed while it was merely slow) discovers it here: the lease
        file is gone or stamped with someone else's id. The worker keeps
        computing — results are deterministic and cache writes
        idempotent — but stops renewing and lets the other claim stand.
        """
        current = _read_json(task.lease_path)
        lease = (current or {}).get("lease") or {}
        if current is None or lease.get("worker") != task.worker_id:
            task.lost = True
            return False
        lease["expires_ts"] = time.time() + lease_s
        current["lease"] = lease
        write_json_atomic(task.lease_path, current)
        task.expires_ts = lease["expires_ts"]
        return True

    def complete(self, task: Task, record: Dict[str, Any]) -> str:
        """Write *task*'s completion record and release its lease."""
        path = os.path.join(self.done_dir, task.name)
        write_json_atomic(path, record)
        if not task.lost:
            try:
                os.unlink(task.lease_path)
            except OSError:
                pass
        return path

    def reclaim_expired(self, now: Optional[float] = None) -> List[str]:
        """Move expired leases back to ``tasks/``; returns their names.

        Called by the coordinator's poll loop. A lease whose stamp is
        past expiry — or unreadable, which a healthy worker would have
        re-stamped within a renewal period — is republished for any
        worker to re-claim. A chunk whose completion record already
        exists is not republished (the worker finished but died before
        releasing the lease); its lease is simply dropped.
        """
        now = time.time() if now is None else now
        reclaimed: List[str] = []
        try:
            names = sorted(os.listdir(self.leases_dir))
        except OSError:
            return reclaimed
        for name in names:
            if not name.startswith(_CHUNK_PREFIX):
                continue
            lease_path = os.path.join(self.leases_dir, name)
            payload = _read_json(lease_path)
            if payload is None:
                continue  # mid-rewrite; the next poll sees the new stamp
            expires = (payload.get("lease") or {}).get("expires_ts", 0.0)
            try:
                expired = float(expires) <= now
            except (TypeError, ValueError):
                expired = True
            if not expired:
                continue
            if os.path.exists(os.path.join(self.done_dir, name)):
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                continue
            payload.pop("lease", None)
            write_json_atomic(
                os.path.join(self.tasks_dir, name), payload)
            try:
                os.unlink(lease_path)
            except OSError:
                pass
            reclaimed.append(name)
        return reclaimed

    def done_records(self) -> Dict[int, Dict[str, Any]]:
        """All completion records, keyed by chunk index."""
        out: Dict[int, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.done_dir))
        except OSError:
            return out
        for name in names:
            if not name.startswith(_CHUNK_PREFIX):
                continue
            record = _read_json(os.path.join(self.done_dir, name))
            if record is None:
                continue
            try:
                out[int(record["chunk"])] = record
            except (KeyError, TypeError, ValueError):
                continue
        return out

    # -- worker heartbeats ---------------------------------------------------

    def write_worker_snapshot(self, worker_id: str,
                              snapshot: Dict[str, Any]) -> None:
        """Publish *worker_id*'s progress snapshot (best-effort)."""
        snapshot = dict(snapshot, worker=worker_id, ts=time.time())
        try:
            write_json_atomic(
                os.path.join(self.workers_dir, worker_id + ".json"), snapshot)
        except OSError:
            pass  # telemetry must never kill work

    def worker_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Every worker's most recent snapshot, keyed by worker id."""
        out: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.workers_dir))
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            snap = _read_json(os.path.join(self.workers_dir, name))
            if snap is not None:
                out[name[: -len(".json")]] = snap
        return out

    # -- inspection ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Task-file counts by state (for status displays and tests)."""
        def _count(directory: str) -> int:
            try:
                return sum(1 for n in os.listdir(directory)
                           if n.startswith(_CHUNK_PREFIX))
            except OSError:
                return 0

        return {
            "tasks": _count(self.tasks_dir),
            "leases": _count(self.leases_dir),
            "done": _count(self.done_dir),
        }
