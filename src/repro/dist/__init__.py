"""Distributed sweeps: coordinator/worker sharding over a shared cache.

The single-box ceiling on grid throughput is the process pool of
:mod:`repro.runner`; this package removes it by splitting the sweep into
a coordinator (:mod:`~repro.dist.coordinator`) that shards the grid into
lease-claimed task files in a shared queue directory
(:mod:`~repro.dist.queue`), and any number of pull-workers
(:mod:`~repro.dist.worker`) that execute chunks against one shared
content-addressed result cache — so any worker's result is every
worker's hit, the cache is the sweep's checkpoint, and killing any
process costs at most one lease timeout of duplicated deterministic
work.
"""

from .coordinator import (
    DistributedSweepError,
    default_queue_dir,
    grid_digest,
    run_distributed,
)
from .queue import QueueStateError, Task, TaskQueue, new_worker_id
from .worker import WorkerError, WorkerReport, run_worker

__all__ = [
    "DistributedSweepError",
    "QueueStateError",
    "Task",
    "TaskQueue",
    "WorkerError",
    "WorkerReport",
    "default_queue_dir",
    "grid_digest",
    "new_worker_id",
    "run_distributed",
    "run_worker",
]
