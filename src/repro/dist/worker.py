"""Pull-worker: claim chunks from a shared queue and execute them.

``repro worker --pull <queue>`` runs this loop. A worker is stateless by
design — everything it needs arrives in the task file (grid indices +
wire-format specs) and everything it produces leaves through the shared
result cache (:mod:`repro.cache`), a per-chunk completion record, and
its own run-ledger shard. Killing a worker at any instant therefore
loses nothing: its leased chunk expires and is re-claimed, and any
points it already finished are cache hits for whoever re-runs them.

Chunk execution reuses :func:`repro.runner.run_grid_report` wholesale —
cache-first lookup (another worker's result is this worker's hit),
per-point error capture, and the serial fast path when the worker has
one core (:func:`repro.runner.resolve_worker_jobs` caps the pool at the
machine, fixing the ``parallel.speedup = 0.95`` pathology of forcing a
pool onto a 1-core box). Between points the worker renews its lease and
refreshes its heartbeat snapshot through a monitor hook, so a sweep's
``--live`` line shows per-worker throughput while leases stay visibly
alive.

Safety: a worker refuses a queue whose manifest was written by different
simulator code or a different kernel backend — mixed versions would
break the sweep's bit-identity contract, the one property the whole
distributed layer is built to preserve.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cache import ResultCache, kernel_fingerprint
from ..core.scenario import spec_from_dict
from ..kernel import resolve_kernel
from ..obs.ledger import RunLedger, ledger_enabled
from ..obs.live import GridMonitor
from ..runner import GridPointError, resolve_worker_jobs, run_grid_report
from .queue import Task, TaskQueue, new_worker_id

__all__ = [
    "POINT_DELAY_ENV_VAR",
    "WorkerError",
    "WorkerReport",
    "run_worker",
]

#: test/debug hook: sleep this many seconds before simulating each point
#: (lets fault-tolerance tests pin a worker mid-chunk deterministically)
POINT_DELAY_ENV_VAR = "REPRO_DIST_POINT_DELAY"


class WorkerError(RuntimeError):
    """The worker cannot (or must not) serve this queue."""


@dataclass
class WorkerReport:
    """What one worker process did over its lifetime."""

    worker_id: str
    chunks: int = 0
    points: int = 0
    computed: int = 0
    cached: int = 0
    errors: int = 0
    events: int = 0
    wall_s: float = 0.0
    #: why the pull loop ended ("stop requested" / "idle timeout" /
    #: "chunk limit")
    exit_reason: str = ""
    #: chunk indices executed, in claim order
    chunk_ids: List[int] = field(default_factory=list)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def summary_line(self) -> str:
        return (
            f"worker={self.worker_id} chunks={self.chunks} "
            f"points={self.points} computed={self.computed} "
            f"cached={self.cached} errors={self.errors} "
            f"wall={self.wall_s:.2f}s events/sec={self.events_per_sec:,.0f}"
            f" ({self.exit_reason or 'done'})"
        )


def _point_delay() -> float:
    """The test-hook delay, validated fail-fast like every other knob."""
    raw = os.environ.get(POINT_DELAY_ENV_VAR, "").strip()
    if not raw:
        return 0.0
    try:
        delay = float(raw)
    except ValueError:
        raise ValueError(
            f"{POINT_DELAY_ENV_VAR} must be a number of seconds, got {raw!r}"
        ) from None
    return max(0.0, delay)


class _ChunkMonitor(GridMonitor):
    """Grid monitor that piggybacks lease renewal + heartbeats on progress.

    ``run_grid_report`` calls :meth:`record` once per point lifecycle
    edge; that cadence (at least once per point) is exactly what lease
    renewal needs, so the worker gets liveness for free without a
    watchdog thread. Rendering is off (``stream=None``) — the
    coordinator owns the screen.
    """

    def __init__(self, total_points: int, worker: "_WorkerLoop"):
        super().__init__(total_points, stream=None)
        self._worker = worker

    def record(self, event) -> None:
        if event[0] == "start" and self._worker.point_delay > 0:
            time.sleep(self._worker.point_delay)
        super().record(event)
        self._worker.on_progress(self)


class _WorkerLoop:
    """State for one worker process (claim / execute / heartbeat)."""

    def __init__(self, queue: TaskQueue, worker_id: str, jobs: int,
                 lease_s: float, ledger: Optional[RunLedger]):
        self.queue = queue
        self.worker_id = worker_id
        self.jobs = jobs
        self.lease_s = lease_s
        self.ledger = ledger
        self.point_delay = _point_delay()
        self.report = WorkerReport(worker_id=worker_id)
        self.task: Optional[Task] = None
        self._last_renew = 0.0
        self._last_snapshot = 0.0
        self._t0 = time.perf_counter()

    # -- heartbeats ----------------------------------------------------------

    def on_progress(self, monitor: GridMonitor) -> None:
        """Per-point hook: renew the lease, refresh the snapshot."""
        now = time.perf_counter()
        if self.task is not None and not self.task.lost \
                and now - self._last_renew >= self.lease_s / 3.0:
            self.queue.renew(self.task, self.lease_s)
            self._last_renew = now
        if now - self._last_snapshot >= 1.0:
            self.write_snapshot("running", monitor)
            self._last_snapshot = now

    def write_snapshot(self, state: str,
                       monitor: Optional[GridMonitor] = None) -> None:
        """Publish this worker's progress file into the queue."""
        report = self.report
        in_chunk_events = monitor.sim_events if monitor is not None else 0
        in_chunk_done = monitor.processed if monitor is not None else 0
        elapsed = time.perf_counter() - self._t0
        events = report.events + in_chunk_events
        self.queue.write_worker_snapshot(self.worker_id, {
            "pid": os.getpid(),
            "state": state,
            "chunks_done": report.chunks,
            "points_done": report.points + in_chunk_done,
            "errors": report.errors,
            "events": events,
            "elapsed_s": round(elapsed, 3),
            "events_per_sec": round(events / elapsed, 1) if elapsed > 0 else 0.0,
            "current_chunk": self.task.chunk if self.task is not None else None,
        })

    # -- chunk execution -----------------------------------------------------

    def execute(self, task: Task, store: ResultCache) -> Dict[str, Any]:
        """Run one chunk and build its completion record.

        The grid report gives per-point results in chunk order; each is
        mapped back to its global grid index. A point whose simulation
        succeeded but whose result never reached the shared cache (disk
        full, permissions) is reported as an error — "done" in a
        distributed sweep *means* "fetchable by everyone".
        """
        self.task = task
        self._last_renew = time.perf_counter()
        indices = [int(p["index"]) for p in task.points]
        specs = [spec_from_dict(p["spec"]) for p in task.points]
        monitor = _ChunkMonitor(len(specs), self)
        t0 = time.perf_counter()
        grid = run_grid_report(
            specs, jobs=self.jobs, raise_on_error=False, cache=store,
            monitor=monitor, ledger=self.ledger if self.ledger else False,
        )
        wall = time.perf_counter() - t0
        points: List[Dict[str, Any]] = []
        for local_i, (index, spec, result) in enumerate(
                zip(indices, specs, grid.results)):
            if isinstance(result, GridPointError):
                points.append({
                    "index": index, "status": "error",
                    "error": result.error, "traceback": result.traceback,
                })
                self.report.errors += 1
            elif local_i in grid.cache_hit_indices:
                points.append({"index": index, "status": "cached",
                               "events": 0})
                self.report.cached += 1
            elif not store.contains(spec):
                points.append({
                    "index": index, "status": "error",
                    "error": "result was computed but could not be written "
                             f"to the shared cache under {store.root}",
                    "traceback": "",
                })
                self.report.errors += 1
            else:
                points.append({
                    "index": index, "status": "computed",
                    "events": result.events_processed,
                })
                self.report.computed += 1
                self.report.events += result.events_processed
        self.report.chunks += 1
        self.report.points += len(points)
        self.report.chunk_ids.append(task.chunk)
        record = {
            "chunk": task.chunk,
            "worker": self.worker_id,
            "wall_s": round(wall, 4),
            "kernel": grid.kernel,
            "points": points,
        }
        self.task = None
        return record


def _check_manifest(manifest: Dict[str, Any]) -> None:
    """Refuse code-version or kernel skew between coordinator and worker."""
    kernel = resolve_kernel().name
    wanted_kernel = manifest.get("kernel")
    if wanted_kernel is not None and wanted_kernel != kernel:
        raise WorkerError(
            f"queue wants kernel {wanted_kernel!r} but this worker resolves "
            f"{kernel!r}; align REPRO_KERNEL/--kernel on every host"
        )
    fingerprint = kernel_fingerprint()
    wanted_fp = manifest.get("fingerprint")
    if wanted_fp is not None and wanted_fp != fingerprint:
        raise WorkerError(
            f"queue was published by different simulator code "
            f"(fingerprint {str(wanted_fp)[:16]}... != "
            f"{fingerprint[:16]}...); update this host's checkout — mixed "
            f"versions would break the sweep's bit-identity"
        )


def run_worker(
    queue_dir: str,
    jobs: Optional[int] = None,
    lease_s: float = 60.0,
    idle_timeout_s: float = 300.0,
    poll_s: float = 0.5,
    max_chunks: Optional[int] = None,
    worker_id: Optional[str] = None,
    cache_root: Optional[str] = None,
) -> WorkerReport:
    """Pull and execute chunks from *queue_dir* until drained.

    The loop claims one task at a time, executes it against the shared
    cache named by the queue manifest (*cache_root* overrides, for hosts
    that mount the cache at a different path), and exits when the
    coordinator's stop sentinel appears with no tasks left, when
    *idle_timeout_s* passes without work (0 disables the timeout), or
    after *max_chunks* chunks. A worker started before the coordinator
    simply waits for the manifest.

    Raises :class:`WorkerError` on manifest skew (wrong code fingerprint
    or kernel backend) and ``ValueError`` on bad knobs, both before any
    task is claimed.
    """
    if lease_s <= 0:
        raise ValueError(f"lease_s must be > 0, got {lease_s}")
    if idle_timeout_s < 0:
        raise ValueError(f"idle_timeout_s must be >= 0, got {idle_timeout_s}")
    queue = TaskQueue(queue_dir)
    worker_id = worker_id or new_worker_id()
    jobs = resolve_worker_jobs(jobs)

    # Wait for the coordinator's manifest (it may not have started yet).
    deadline = time.perf_counter() + (idle_timeout_s or float("inf"))
    while True:
        manifest = queue.read_manifest()
        if manifest is not None:
            break
        if queue.stop_requested():
            return WorkerReport(worker_id=worker_id,
                                exit_reason="stop requested")
        if time.perf_counter() >= deadline:
            raise WorkerError(
                f"no sweep manifest appeared under {queue_dir} within "
                f"{idle_timeout_s:g}s (is the coordinator running?)"
            )
        time.sleep(min(poll_s, 0.5))
    _check_manifest(manifest)

    root = cache_root or manifest.get("cache_root") or None
    # Explicit instance: the shared cache is the sweep's data plane, so
    # it is always on here regardless of the REPRO_CACHE kill-switch.
    store = ResultCache(root=root)
    ledger = (RunLedger(root=queue.ledger_dir(worker_id))
              if ledger_enabled() else None)

    loop = _WorkerLoop(queue, worker_id, jobs, lease_s, ledger)
    loop.write_snapshot("idle")
    t0 = time.perf_counter()
    idle_since = time.perf_counter()
    try:
        while True:
            task = queue.claim(worker_id, lease_s)
            if task is None:
                if queue.stop_requested():
                    loop.report.exit_reason = "stop requested"
                    break
                if idle_timeout_s and \
                        time.perf_counter() - idle_since > idle_timeout_s:
                    loop.report.exit_reason = "idle timeout"
                    break
                time.sleep(poll_s)
                continue
            record = loop.execute(task, store)
            queue.complete(task, record)
            loop.write_snapshot("running")
            idle_since = time.perf_counter()
            if max_chunks is not None and loop.report.chunks >= max_chunks:
                loop.report.exit_reason = "chunk limit"
                break
    finally:
        loop.report.wall_s = time.perf_counter() - t0
        loop.write_snapshot("exited")
    return loop.report
