"""Coordinator: shard a grid into a queue, await workers, assemble results.

:func:`run_distributed` is the distributed counterpart of
:func:`repro.runner.run_grid_report` and keeps its contract — results in
grid order, per-point error capture, one :class:`GridReport` out — while
replacing the process pool with the shared-filesystem queue of
:mod:`repro.dist.queue`. The division of labor:

* the **shared result cache is the data plane and the checkpoint**: the
  coordinator pre-scans it (resumed sweeps publish only what is missing
  — zero recomputation of completed points), workers write every
  computed result into it, and final assembly reads results back out of
  it. Queue files carry only indices, specs, and statuses — never
  results;
* the **queue is the control plane**: published chunks, lease-claimed
  chunks, per-chunk completion records, worker heartbeats. The
  coordinator's poll loop re-publishes expired leases, so any worker
  death costs one lease timeout, not the sweep;
* the **run ledger is the journal**: the sweep appends a standard grid
  record extended with a ``distributed`` block (queue path, workers
  seen, chunks, reclaims), so ``repro runs list|diff`` treat distributed
  and local sweeps uniformly.

The coordinator never simulates. With ``workers=0`` it only coordinates
— start ``repro worker --pull <queue>`` processes anywhere the queue
directory and cache are mounted; with ``workers=N`` it spawns N local
pull-workers as subprocesses for the single-box case.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..cache import ResultCache, kernel_fingerprint, resolve_cache
from ..core.experiment import ExperimentSpec
from ..core.scenario import canonical_spec_json, spec_to_dict
from ..kernel import resolve_kernel
from ..obs.ledger import RunLedger, resolve_ledger
from ..obs.live import GridMonitor, progress_hit
from ..runner import (
    ExperimentGridError,
    GridPointError,
    GridReport,
    resolve_chunk,
)
from .queue import QUEUE_FORMAT_VERSION, TaskQueue

__all__ = [
    "DistributedSweepError",
    "default_queue_dir",
    "grid_digest",
    "run_distributed",
]


class DistributedSweepError(RuntimeError):
    """The sweep cannot make progress (dead workers, timeout)."""


def grid_digest(specs: Sequence[ExperimentSpec]) -> str:
    """Content digest of an ordered grid (order matters: index = identity).

    Two sweeps share a queue directory only when this matches — same
    specs, same order — which is what makes resuming safe and mixing
    sweeps impossible.
    """
    h = hashlib.sha256()
    for spec in specs:
        h.update(canonical_spec_json(spec).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def default_queue_dir(name: str, digest: str) -> str:
    """A per-sweep queue location under the cache root.

    Keyed by scenario name + grid digest so re-issuing the same sweep
    resumes its queue and a changed grid gets a fresh one, with no
    ``--queue`` bookkeeping by the user on the single-box path.
    """
    from ..cache import default_cache_dir

    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name)
    return os.path.join(default_cache_dir(), "queue",
                        f"{safe or 'sweep'}-{digest[:12]}")


def _spawn_local_worker(
    queue_dir: str,
    lease_s: float,
    poll_s: float,
    worker_jobs: Optional[int],
) -> subprocess.Popen:
    """Start one ``repro worker --pull`` subprocess against *queue_dir*.

    Workers inherit the environment (REPRO_KERNEL et al. must match the
    manifest or they will refuse the queue) plus a PYTHONPATH that
    guarantees they import the same ``repro`` as the coordinator.
    Worker stdout is discarded — the coordinator owns the terminal —
    but stderr passes through so a crashing worker is never silent.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "repro", "worker",
        "--pull", queue_dir,
        "--lease-timeout", str(lease_s),
        "--poll", str(poll_s),
    ]
    if worker_jobs is not None:
        cmd += ["--jobs", str(worker_jobs)]
    return subprocess.Popen(cmd, stdout=subprocess.DEVNULL, env=env)


def _fold_done_record(
    record: Dict[str, Any],
    monitor: Optional[GridMonitor],
    seen_workers: set,
) -> None:
    """Feed one newly-landed completion record into the live monitor."""
    seen_workers.add(str(record.get("worker", "?")))
    if monitor is None:
        return
    points = record.get("points", [])
    wall_each = float(record.get("wall_s", 0.0)) / max(1, len(points))
    worker = str(record.get("worker", "?"))
    for point in points:
        index = int(point.get("index", -1))
        status = point.get("status")
        if status == "computed":
            monitor.record(("done", index, int(point.get("events", 0)),
                            wall_each, worker))
        elif status == "cached":
            monitor.record(progress_hit(index))
        else:
            monitor.record(("error", index,
                            str(point.get("error", "unknown error")), worker))


def run_distributed(
    specs: Sequence[ExperimentSpec],
    queue_dir: str,
    cache: Union[None, bool, ResultCache] = None,
    chunk: Optional[int] = None,
    workers: int = 0,
    worker_jobs: Optional[int] = None,
    lease_s: float = 60.0,
    poll_s: float = 0.5,
    wait_timeout_s: Optional[float] = None,
    monitor: Optional[GridMonitor] = None,
    ledger: Union[None, bool, RunLedger] = None,
    raise_on_error: bool = True,
    name: str = "sweep",
) -> GridReport:
    """Run *specs* through the distributed queue; results in grid order.

    Publishes every not-yet-cached point into *queue_dir* in chunks of
    *chunk* (``None``: ``REPRO_CHUNK``, then auto-sizing against the
    expected worker count), optionally spawns *workers* local
    pull-workers, and polls until every chunk has a completion record —
    re-publishing chunks whose lease expired (*lease_s*) along the way.
    Results are then read back from the shared cache in grid order.

    Restartability is the core contract: killing the coordinator (or any
    worker) and re-invoking with the same specs and queue resumes from
    the cache — completed points are pre-scan hits and are never
    republished. *wait_timeout_s* bounds the wait for external workers
    (``None`` waits indefinitely); exceeding it stops the sweep with
    :class:`DistributedSweepError`, as does every spawned local worker
    dying with chunks still outstanding.
    """
    specs = list(specs)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if lease_s <= 0:
        raise ValueError(f"lease_s must be > 0, got {lease_s}")
    store = resolve_cache(cache)
    if store is None:
        raise ValueError(
            "distributed sweeps require the shared result cache — it is how "
            "workers return results; unset REPRO_CACHE=off or pass cache="
        )
    t_start = time.perf_counter()

    # Pre-scan: the cache is the checkpoint, so everything already in it
    # is done before any task is published.
    slots: List[Optional[Any]] = [None] * len(specs)
    hit_indices: List[int] = []
    pending: List[Tuple[int, ExperimentSpec]] = []
    for i, spec in enumerate(specs):
        hit = store.get(spec)
        if hit is not None:
            slots[i] = hit
            hit_indices.append(i)
            if monitor is not None:
                monitor.record(progress_hit(i))
        else:
            pending.append((i, spec))

    digest = grid_digest(specs)
    queue = TaskQueue(queue_dir)
    chunk_size = resolve_chunk(chunk, points=len(pending),
                               jobs=max(workers, 1))
    manifest = {
        "v": QUEUE_FORMAT_VERSION,
        "name": name,
        "grid_digest": digest,
        "total_points": len(specs),
        "pending_points": len(pending),
        "chunks": -(-len(pending) // chunk_size) if pending else 0,
        "chunk_size": chunk_size,
        "kernel": resolve_kernel().name,
        "fingerprint": kernel_fingerprint(),
        "cache_root": store.root,
        "created_ts": time.time(),
    }
    queue.prepare(manifest)
    chunk_ids: List[int] = []
    for c, k in enumerate(range(0, len(pending), chunk_size)):
        batch = pending[k : k + chunk_size]
        queue.publish(c, [
            {"index": i, "spec": spec_to_dict(spec)} for i, spec in batch
        ])
        chunk_ids.append(c)
    if monitor is not None:
        monitor.chunk = chunk_size

    procs: List[subprocess.Popen] = []
    notices: List[str] = []
    seen_workers: set = set()
    folded: set = set()
    reclaim_total = 0
    deadline = (time.perf_counter() + wait_timeout_s
                if wait_timeout_s is not None else None)
    try:
        if chunk_ids and workers:
            procs = [
                _spawn_local_worker(queue.root, lease_s, poll_s, worker_jobs)
                for _ in range(workers)
            ]
        done: Dict[int, Dict[str, Any]] = {}
        while chunk_ids:
            done = queue.done_records()
            for c in chunk_ids:
                if c in done and c not in folded:
                    folded.add(c)
                    _fold_done_record(done[c], monitor, seen_workers)
            if monitor is not None and hasattr(monitor, "update_workers"):
                monitor.update_workers(queue.worker_snapshots())
            if len(folded) == len(chunk_ids):
                break
            reclaimed = queue.reclaim_expired()
            if reclaimed:
                reclaim_total += len(reclaimed)
            if procs and all(p.poll() is not None for p in procs):
                # Give the filesystem one final look before declaring
                # the sweep dead — the last worker may have completed
                # its chunk between our listing and its exit.
                if len(queue.done_records()) < len(chunk_ids):
                    raise DistributedSweepError(
                        f"all {len(procs)} local worker(s) exited with "
                        f"{len(chunk_ids) - len(folded)} chunk(s) "
                        f"outstanding; see worker stderr above"
                    )
                continue
            if deadline is not None and time.perf_counter() > deadline:
                raise DistributedSweepError(
                    f"sweep did not complete within {wait_timeout_s:g}s: "
                    f"{len(folded)}/{len(chunk_ids)} chunks done "
                    f"(queue {queue.root}, stats {queue.stats()})"
                )
            time.sleep(poll_s)
    finally:
        queue.request_stop()
        for p in procs:
            try:
                p.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                p.terminate()
                try:
                    p.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    p.kill()
    if reclaim_total:
        notices.append(
            f"re-dispatched {reclaim_total} expired chunk lease(s)"
        )

    # Assembly: statuses from completion records, results from the cache.
    outcome_by_index: Dict[int, Dict[str, Any]] = {}
    for record in queue.done_records().values():
        for point in record.get("points", []):
            outcome_by_index[int(point.get("index", -1))] = point
    total_events = 0
    cache_misses = cache_skipped = 0
    errors: List[GridPointError] = []
    for i, spec in pending:
        point = outcome_by_index.get(i)
        if point is not None and point.get("status") == "error":
            error = GridPointError(
                index=i, spec=spec,
                error=str(point.get("error", "unknown error")),
                traceback=str(point.get("traceback", "")),
            )
            slots[i] = error
            errors.append(error)
            cache_skipped += 1
            continue
        result = store.get(spec)
        if result is None:
            error = GridPointError(
                index=i, spec=spec,
                error="chunk completed but the result is missing from the "
                      f"shared cache under {store.root}",
                traceback="",
            )
            slots[i] = error
            errors.append(error)
            cache_skipped += 1
            continue
        slots[i] = result
        if point is not None and point.get("status") == "computed":
            total_events += int(point.get("events", 0))
            cache_misses += 1
        else:  # another worker computed it first — still a shared-cache hit
            hit_indices.append(i)
    if monitor is not None:
        monitor.finish()

    report = GridReport(
        results=list(slots),
        jobs=max(1, len(seen_workers)),
        wall_s=time.perf_counter() - t_start,
        total_events=total_events,
        errors=errors,
        cache_hits=len(hit_indices),
        cache_misses=cache_misses,
        cache_skipped=cache_skipped,
        cache_used=True,
        chunk=chunk_size,
        kernel=manifest["kernel"],
        cache_hit_indices=frozenset(hit_indices),
        notices=notices,
    )
    ledger_store = resolve_ledger(ledger)
    if ledger_store is not None:
        report.run_id = ledger_store.record_grid(specs, report, extra={
            "distributed": {
                "queue": queue.root,
                "workers": sorted(seen_workers),
                "chunks": len(chunk_ids),
                "chunk_size": chunk_size,
                "reclaims": reclaim_total,
                "lease_s": lease_s,
            },
        })
    if errors and raise_on_error:
        raise ExperimentGridError(errors)
    return report
