"""TCP NewReno: the reference AIMD algorithm.

Not evaluated by the paper, but included as the canonical loss-based
baseline; its behaviour is entirely provided by
:class:`~repro.cc.base.CongestionOps`'s defaults (slow start, +1 MSS per
RTT, halve on loss).
"""

from __future__ import annotations

from .base import CongestionOps

__all__ = ["Reno"]


class Reno(CongestionOps):
    """NewReno congestion control."""

    name = "reno"
    ack_cost_cycles = 400
    wants_pacing = False
