"""Congestion-control modules: Cubic (Android default), BBR, BBR2, Reno,
and the §5 master module for controlled experiments.

Factories: every connection needs its **own instance** (modules hold
per-connection state), so experiment code passes callables like
``lambda: Bbr()``. The built-in algorithms are registered by name in
:data:`CC_ALGORITHMS`; specs and scenario files reference them by that
name, and new algorithms (e.g. a BBRv3 variant) become available
everywhere by registering a factory here.
"""

from ..registry import Registry
from .base import CongestionOps
from .bbr import Bbr
from .bbr2 import Bbr2
from .cubic import Cubic
from .master import MasterModule
from .minmax import WindowedMaxFilter
from .reno import Reno

__all__ = [
    "CongestionOps",
    "Cubic",
    "Bbr",
    "Bbr2",
    "Reno",
    "MasterModule",
    "WindowedMaxFilter",
    "CC_ALGORITHMS",
]

#: name -> zero-argument factory producing a fresh per-connection module
CC_ALGORITHMS: Registry = Registry("congestion control")
CC_ALGORITHMS.register("cubic", Cubic)
CC_ALGORITHMS.register("bbr", Bbr)
CC_ALGORITHMS.register("bbr2", Bbr2)
CC_ALGORITHMS.register("reno", Reno)
