"""Congestion-control modules: Cubic (Android default), BBR, BBR2, Reno,
and the §5 master module for controlled experiments.

Factories: every connection needs its **own instance** (modules hold
per-connection state), so experiment code passes callables like
``lambda: Bbr()``.
"""

from .base import CongestionOps
from .bbr import Bbr
from .bbr2 import Bbr2
from .cubic import Cubic
from .master import MasterModule
from .minmax import WindowedMaxFilter
from .reno import Reno

__all__ = [
    "CongestionOps",
    "Cubic",
    "Bbr",
    "Bbr2",
    "Reno",
    "MasterModule",
    "WindowedMaxFilter",
]
