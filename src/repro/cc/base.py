"""Congestion-control module interface (mirrors ``tcp_congestion_ops``).

A module owns the congestion window and, when it wants pacing, the pacing
rate. The sender calls :meth:`CongestionOps.cong_control` on every ACK
with the rate sample, and the state-transition hooks around loss
recovery. Modules also declare their per-ACK CPU cost — §5 of the paper
distinguishes BBR's "recompute the model on every ACK" from Cubic's
cheap AIMD arithmetic, and the cost model charges accordingly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..tcp.connection import TcpSender
    from ..tcp.rate_sample import RateSample

__all__ = ["CongestionOps"]


class CongestionOps:
    """Base class for congestion-control modules.

    Subclasses override the hooks they need. The sender guarantees:

    * :meth:`init` is called once before any data is sent,
    * :meth:`cong_control` is called for every processed ACK, after the
      scoreboard and delivery counters are updated,
    * the recovery hooks are called on state transitions.
    """

    #: module name (shows up in experiment reports)
    name = "base"
    #: CPU cycles charged per ACK for the module's model update
    ack_cost_cycles = 0
    #: True if the module requires packet pacing (BBR family)
    wants_pacing = False

    def init(self, conn: "TcpSender") -> None:
        """One-time setup; *conn* is fully constructed."""

    def cong_control(self, conn: "TcpSender", rs: "RateSample") -> None:
        """Per-ACK main entry: update the model, set cwnd/pacing rate.

        The default implementation provides the classic split used by
        loss-based algorithms: slow start below ``ssthresh``, otherwise
        :meth:`cong_avoid`.
        """
        acked = rs.newly_acked_segments
        if acked <= 0:
            return
        if conn.in_slow_start:
            acked = self.slow_start(conn, acked)
        if acked > 0 and not conn.in_slow_start:
            self.cong_avoid(conn, acked)

    # -- loss-based helpers ----------------------------------------------------

    def slow_start(self, conn: "TcpSender", acked: int) -> int:
        """Exponential growth; returns ACKs left over after hitting ssthresh."""
        new_cwnd = min(conn.cwnd + acked, conn.ssthresh)
        leftover = acked - (new_cwnd - conn.cwnd)
        conn.cwnd = new_cwnd
        return leftover

    def cong_avoid(self, conn: "TcpSender", acked: int) -> None:
        """Additive increase (Reno default: +1 MSS per RTT)."""
        conn.cwnd_cnt += acked
        if conn.cwnd_cnt >= conn.cwnd:
            conn.cwnd_cnt -= conn.cwnd
            conn.cwnd += 1

    # -- events ------------------------------------------------------------------

    def ssthresh(self, conn: "TcpSender") -> int:
        """Slow-start threshold after a loss event (Reno: cwnd/2)."""
        return max(conn.cwnd // 2, 2)

    def on_enter_recovery(self, conn: "TcpSender") -> None:
        """Entering fast recovery (a loss was detected)."""

    def on_exit_recovery(self, conn: "TcpSender") -> None:
        """Recovery completed (all data at entry has been acked)."""

    def on_rto(self, conn: "TcpSender") -> None:
        """Retransmission timeout fired."""

    def on_min_rtt_update(self, conn: "TcpSender", rtt_ns: int) -> None:
        """A new propagation-delay estimate was accepted."""

    # -- rates --------------------------------------------------------------------

    def pacing_rate_bps(self, conn: "TcpSender") -> Optional[float]:
        """Pacing rate in bits/s, or None to use TCP's internal formula.

        The internal formula (used when pacing is force-enabled on a
        loss-based module, §5.2.2) is ``factor * cwnd * mss / srtt`` with
        factor 2.0 in slow start and 1.2 in congestion avoidance.
        """
        return None

    def min_tso_segs(self, conn: "TcpSender") -> int:
        """Lower bound on autosized super-packet segments."""
        return 2

    # -- tracing ------------------------------------------------------------------

    def trace_state(self, conn: "TcpSender", **fields) -> None:
        """Emit a CC state-transition record on the stack's tracer.

        One guarded attribute check when tracing is off; records appear
        under source ``cc-<flow_id>`` with the module name attached.
        """
        tracer = getattr(conn.services, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.emit(conn.now, f"cc-{conn.flow_id}", "mode",
                        algo=self.name, **fields)

    def release(self, conn: "TcpSender") -> None:
        """Connection teardown hook."""
