"""The paper's "master BBR kernel module" (§5).

To isolate which of BBR's differences from Cubic causes the mobile
performance gap, the authors built a module that can

1. disable the BBR model's per-ACK computation,
2. pin the congestion window to a fixed value,
3. enable/disable packet pacing,
4. pin the pacing rate.

:class:`MasterModule` wraps any :class:`~repro.cc.base.CongestionOps`
and applies the same four overrides, so every §5 experiment is expressed
as a wrapped module. (Pacing enable/disable is equally reachable through
``SocketConfig.pacing_mode``; the knob here exists so a single object
fully describes a §5 configuration.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .base import CongestionOps

if TYPE_CHECKING:  # pragma: no cover
    from ..tcp.connection import TcpSender
    from ..tcp.rate_sample import RateSample

__all__ = ["MasterModule"]


class MasterModule(CongestionOps):
    """Wrap *inner* with the §5 control knobs."""

    def __init__(
        self,
        inner: CongestionOps,
        disable_model: bool = False,
        fixed_cwnd_segments: Optional[int] = None,
        fixed_pacing_rate_bps: Optional[float] = None,
        force_pacing: Optional[bool] = None,
    ):
        self.inner = inner
        self.disable_model = disable_model
        self.fixed_cwnd_segments = fixed_cwnd_segments
        self.fixed_pacing_rate_bps = fixed_pacing_rate_bps
        self.force_pacing = force_pacing
        self.name = f"master({inner.name})"

    # -- cost and pacing properties reflect the configuration -------------------

    @property
    def ack_cost_cycles(self) -> int:  # type: ignore[override]
        """Model disabled => the per-ACK model cost disappears too."""
        return 0 if self.disable_model else self.inner.ack_cost_cycles

    @property
    def wants_pacing(self) -> bool:  # type: ignore[override]
        if self.force_pacing is not None:
            return self.force_pacing
        return self.inner.wants_pacing

    # -- delegation with overrides ------------------------------------------------

    def init(self, conn: "TcpSender") -> None:
        self.inner.init(conn)
        self._apply_overrides(conn)

    def cong_control(self, conn: "TcpSender", rs: "RateSample") -> None:
        if not self.disable_model:
            self.inner.cong_control(conn, rs)
        self._apply_overrides(conn)

    def ssthresh(self, conn: "TcpSender") -> int:
        if self.fixed_cwnd_segments is not None:
            return self.fixed_cwnd_segments
        return self.inner.ssthresh(conn)

    def on_enter_recovery(self, conn: "TcpSender") -> None:
        if not self.disable_model:
            self.inner.on_enter_recovery(conn)
        self._apply_overrides(conn)

    def on_exit_recovery(self, conn: "TcpSender") -> None:
        if not self.disable_model:
            self.inner.on_exit_recovery(conn)
        self._apply_overrides(conn)

    def on_rto(self, conn: "TcpSender") -> None:
        if not self.disable_model:
            self.inner.on_rto(conn)
        self._apply_overrides(conn)

    def on_min_rtt_update(self, conn: "TcpSender", rtt_ns: int) -> None:
        if not self.disable_model:
            self.inner.on_min_rtt_update(conn, rtt_ns)

    def pacing_rate_bps(self, conn: "TcpSender") -> Optional[float]:
        if self.fixed_pacing_rate_bps is not None:
            return self.fixed_pacing_rate_bps
        if self.disable_model:
            return None  # fall back to TCP's internal formula
        return self.inner.pacing_rate_bps(conn)

    def min_tso_segs(self, conn: "TcpSender") -> int:
        return self.inner.min_tso_segs(conn)

    def release(self, conn: "TcpSender") -> None:
        self.inner.release(conn)

    # -- internals --------------------------------------------------------------------

    def _apply_overrides(self, conn: "TcpSender") -> None:
        if self.fixed_cwnd_segments is not None:
            conn.cwnd = self.fixed_cwnd_segments
