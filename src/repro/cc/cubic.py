"""CUBIC congestion control with HyStart (``net/ipv4/tcp_cubic.c``).

CUBIC is Android's (and Linux's) default. The window grows along the
cubic function

    ``W(t) = C * (t - K)^3 + W_max``

where ``K = cbrt(W_max * (1 - beta) / C)`` is the time at which the
window regains its pre-loss size ``W_max``. The implementation follows
the kernel: beta = 717/1024, C = 0.4, fast convergence, a TCP-friendly
(Reno-tracking) floor, and HyStart's delay-increase exit from slow start.

Cubic does **not** pace by default — the single most important contrast
with BBR for this paper (§5). Its per-ACK work is a handful of integer
operations, reflected in a small ``ack_cost_cycles``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..units import MSEC, SEC, to_seconds
from .base import CongestionOps

if TYPE_CHECKING:  # pragma: no cover
    from ..tcp.connection import TcpSender
    from ..tcp.rate_sample import RateSample

__all__ = ["Cubic"]

#: multiplicative decrease factor (kernel: 717/1024)
BETA = 717 / 1024
#: cubic scaling constant C, in segments/second^3
C_SCALE = 0.4
#: HyStart delay-increase thresholds
HYSTART_MIN_SAMPLES = 8
HYSTART_DELAY_MIN_NS = 4 * MSEC
HYSTART_DELAY_MAX_NS = 16 * MSEC
#: HyStart only arms above this cwnd (kernel hystart_low_window)
HYSTART_LOW_WINDOW = 16


class Cubic(CongestionOps):
    """CUBIC with HyStart delay-based slow-start exit."""

    name = "cubic"
    ack_cost_cycles = 600
    wants_pacing = False

    def __init__(self, hystart: bool = True):
        self.hystart_enabled = hystart
        self._reset_epoch()
        # W_max memory across epochs (fast convergence)
        self.w_last_max = 0.0
        # HyStart per-round state
        self._hy_round_start_ns = 0
        self._hy_end_seq = 0
        self._hy_curr_rtt_ns: Optional[int] = None
        self._hy_sample_cnt = 0
        self._hy_found = False

    def _reset_epoch(self) -> None:
        self.epoch_start_ns: Optional[int] = None
        self.w_max = 0.0
        self.k_seconds = 0.0
        self.origin_point = 0.0
        self.tcp_cwnd = 0.0  # Reno-friendly estimate
        self.ack_cnt = 0

    # -- slow start (HyStart) -------------------------------------------------

    def init(self, conn: "TcpSender") -> None:
        self._hy_end_seq = 0

    def cong_control(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self.hystart_enabled and conn.in_slow_start and rs.rtt_ns > 0:
            self._hystart_update(conn, rs)
        super().cong_control(conn, rs)

    def _hystart_update(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self._hy_found or conn.cwnd < HYSTART_LOW_WINDOW:
            return
        now = conn.now
        # New round: snd_una passed the round's end marker.
        if conn.scoreboard.snd_una > self._hy_end_seq:
            self._hy_end_seq = conn.snd_nxt
            self._hy_round_start_ns = now
            self._hy_sample_cnt = 0
            self._hy_curr_rtt_ns = None
        if self._hy_sample_cnt < HYSTART_MIN_SAMPLES:
            self._hy_sample_cnt += 1
            if self._hy_curr_rtt_ns is None or rs.rtt_ns < self._hy_curr_rtt_ns:
                self._hy_curr_rtt_ns = rs.rtt_ns
            return
        base = conn.min_rtt_ns
        if base is None or self._hy_curr_rtt_ns is None:
            return
        eta = min(max(base // 8, HYSTART_DELAY_MIN_NS), HYSTART_DELAY_MAX_NS)
        if self._hy_curr_rtt_ns >= base + eta:
            self._hy_found = True
            conn.ssthresh = conn.cwnd  # leave slow start now

    # -- congestion avoidance -----------------------------------------------------

    def cong_avoid(self, conn: "TcpSender", acked: int) -> None:
        cnt = self._cubic_update(conn, acked)
        # tcp_cong_avoid_ai: grow cwnd by acked/cnt segments.
        conn.cwnd_cnt += acked
        if conn.cwnd_cnt >= cnt:
            conn.cwnd += conn.cwnd_cnt // cnt
            conn.cwnd_cnt %= cnt

    def _cubic_update(self, conn: "TcpSender", acked: int) -> int:
        """Return the ACK count per +1 segment (kernel's ``ca->cnt``)."""
        now = conn.now
        self.ack_cnt += acked
        cwnd = conn.cwnd

        if self.epoch_start_ns is None:
            self.epoch_start_ns = now
            self.ack_cnt = acked
            self.tcp_cwnd = float(cwnd)
            if cwnd >= self.w_last_max:
                self.w_max = float(cwnd)
                self.k_seconds = 0.0
            else:
                self.w_max = self.w_last_max
                self.k_seconds = (
                    (self.w_last_max - cwnd) * (1.0 - BETA) / C_SCALE
                ) ** (1.0 / 3.0)
            self.origin_point = self.w_max

        t = to_seconds(now - self.epoch_start_ns)
        rtt_s = to_seconds(conn.srtt_ns or MSEC)
        target = self.origin_point + C_SCALE * ((t + rtt_s) - self.k_seconds) ** 3

        if target > cwnd:
            cnt = cwnd / (target - cwnd)
        else:
            cnt = 100.0 * cwnd  # effectively frozen this RTT

        # TCP-friendly region: at least Reno's growth rate. The kernel
        # estimates W_est incrementally; an equivalent closed form:
        self.tcp_cwnd = max(
            self.tcp_cwnd,
            self.w_max * BETA + 3.0 * (1.0 - BETA) / (1.0 + BETA) * t / max(rtt_s, 1e-6),
        )
        if self.tcp_cwnd > cwnd:
            friendly_cnt = cwnd / (self.tcp_cwnd - cwnd)
            cnt = min(cnt, friendly_cnt)

        return max(2, int(cnt))

    # -- loss response ------------------------------------------------------------------

    def ssthresh(self, conn: "TcpSender") -> int:
        cwnd = conn.cwnd
        # Fast convergence: back off W_max further when losses come sooner
        # than the previous epoch's W_max, ceding capacity to new flows.
        if cwnd < self.w_last_max:
            self.w_last_max = cwnd * (2.0 - BETA) / 2.0
        else:
            self.w_last_max = float(cwnd)
        self._reset_epoch()
        return max(int(cwnd * BETA), 2)

    def on_rto(self, conn: "TcpSender") -> None:
        self._reset_epoch()
        self._hy_found = False
        self._hy_end_seq = 0
