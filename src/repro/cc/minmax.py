"""Kernel-style windowed max filter (``lib/minmax.c``).

BBR's bandwidth estimate is the maximum delivery-rate sample seen over
the last 10 round trips. The kernel tracks it with a 3-sample streaming
filter that ages estimates out of the window without storing the whole
history; this is a direct port of ``minmax_running_max`` /
``minmax_subwin_update``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["WindowedMaxFilter"]


@dataclass
class _Sample:
    time: int
    value: float


class WindowedMaxFilter:
    """Running maximum over a sliding window of *window* time units.

    "Time" is whatever monotonic counter the caller passes (BBR uses
    round-trip counts). The filter keeps the best, second-best and
    third-best samples, each newer than the previous; when the best ages
    out, the second-best is promoted and the *current* sample back-fills
    the tail — so a stale maximum really does expire.
    """

    def __init__(self, window: int):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self._s: List[_Sample] = []

    @property
    def value(self) -> float:
        """Current windowed maximum (0.0 before any sample)."""
        return self._s[0].value if self._s else 0.0

    def reset(self, time: int, value: float) -> None:
        """Forget history and seed all slots with one sample."""
        self._s = [_Sample(time, value), _Sample(time, value), _Sample(time, value)]

    def update(self, time: int, value: float) -> float:
        """Offer a new sample at *time*; returns the windowed maximum."""
        if (
            not self._s
            or value >= self._s[0].value
            or time - self._s[2].time > self.window
        ):
            self.reset(time, value)
            return self.value

        s = self._s
        if value >= s[1].value:
            s[2] = _Sample(time, value)
            s[1] = _Sample(time, value)
        elif value >= s[2].value:
            s[2] = _Sample(time, value)

        return self._subwin_update(time, value)

    def _subwin_update(self, time: int, value: float) -> float:
        s = self._s
        sample = _Sample(time, value)
        dt = time - s[0].time
        if dt > self.window:
            # The best sample expired: promote the others and back-fill
            # the tail with the current sample.
            s.pop(0)
            s.append(sample)
            if time - s[0].time > self.window:
                s.pop(0)
                s.append(sample)
        elif s[1].time == s[0].time and dt > self.window // 4:
            # First quarter passed without a newer second-best: take the
            # current sample as both runners-up.
            s[2] = s[1] = sample
        elif s[2].time == s[1].time and dt > self.window // 2:
            # Half passed without a newer third-best.
            s[2] = sample
        return self.value
