"""BBR v2 congestion control (after the v2alpha kernel branch).

BBR2 keeps BBR's bandwidth/RTT model but reacts to *persistent loss* to
improve fairness and shallow-buffer behaviour:

* it maintains **upper bounds** discovered by probing — ``inflight_hi``
  (packets) and ``bw_hi`` — cut multiplicatively (beta = 0.7) when a
  probing round exceeds the 2% loss threshold,
* it maintains **short-term lower bounds** — ``inflight_lo`` / ``bw_lo``
  — tightened on lossy rounds and released when probing resumes,
* PROBE_BW becomes a four-phase cycle **DOWN → CRUISE → REFILL → UP**,
  with CRUISE holding 85% of ``inflight_hi`` for headroom and UP probing
  until loss or the bound is hit,
* STARTUP additionally exits on sustained loss (not only on a bandwidth
  plateau).

This is a faithful structural port of the v2alpha design, simplified
where the kernel tracks duplicate machinery (e.g. the two-stage bw_hi
filter is a windowed max here; ECN hooks are omitted — the paper's
testbed has no ECN). The differences do not affect the mobile-CPU
phenomena under study; see DESIGN.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..units import MSEC, SEC
from .base import CongestionOps
from .bbr import (
    CWND_GAIN,
    DRAIN_GAIN,
    FULL_BW_COUNT,
    FULL_BW_THRESHOLD,
    HIGH_GAIN,
    MIN_TARGET_CWND,
    PACING_MARGIN,
    PROBE_RTT_DURATION_NS,
)
from .minmax import WindowedMaxFilter

if TYPE_CHECKING:  # pragma: no cover
    from ..tcp.connection import TcpSender
    from ..tcp.rate_sample import RateSample

__all__ = ["Bbr2"]

#: multiplicative cut applied to the lower bounds on lossy rounds
BETA = 0.7
#: per-round loss-rate threshold that counts as "too much loss"
LOSS_THRESH = 0.02
#: CRUISE keeps inflight at this fraction of inflight_hi (headroom)
HEADROOM = 0.85
#: STARTUP exits after this many consecutive lossy rounds
STARTUP_FULL_LOSS_COUNT = 6
#: bandwidth-probe wait between UP phases (base + up to 1 s of spread)
PROBE_WAIT_BASE_NS = 2 * SEC

STARTUP = "startup"
DRAIN = "drain"
PROBE_RTT = "probe_rtt"
# PROBE_BW sub-phases
PROBE_DOWN = "probe_down"
PROBE_CRUISE = "probe_cruise"
PROBE_REFILL = "probe_refill"
PROBE_UP = "probe_up"

_PROBE_BW_MODES = (PROBE_DOWN, PROBE_CRUISE, PROBE_REFILL, PROBE_UP)


class Bbr2(CongestionOps):
    """BBR v2."""

    name = "bbr2"
    ack_cost_cycles = 2600
    wants_pacing = True

    def __init__(self) -> None:
        self.mode = STARTUP
        # v2 ages its bandwidth ceiling per *probe cycle* (the kernel's
        # two-stage bw_hi[] advance), not per round trip — otherwise the
        # estimate would decay during the multi-second CRUISE phases.
        self.bw_filter = WindowedMaxFilter(2)
        self.cycle_count = 0
        self.rtt_cnt = 0
        self.next_rtt_delivered = 0
        self.round_start = False
        self.pacing_gain = HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN
        self.full_bw = 0.0
        self.full_bw_cnt = 0
        self.full_bw_reached = False
        # loss-adaptive bounds
        self.inflight_hi: Optional[int] = None
        self.inflight_lo: Optional[int] = None
        self.bw_lo: Optional[float] = None
        self._round_lost = 0
        self._round_delivered_segs = 0
        self._startup_loss_rounds = 0
        # probing schedule
        self.probe_wait_until_ns = 0
        self.cycle_stamp_ns = 0
        self.probe_rtt_done_stamp: Optional[int] = None
        self.probe_rtt_round_done = False
        self.prior_cwnd = 0
        self._rate_bps = 0.0

    # -- CongestionOps interface -------------------------------------------------

    def init(self, conn: "TcpSender") -> None:
        self.cycle_stamp_ns = conn.now
        rtt_ns = conn.srtt_ns or MSEC
        bw = conn.cwnd * conn.mss * 8 * SEC / rtt_ns
        self._rate_bps = HIGH_GAIN * bw * PACING_MARGIN
        conn.cwnd = max(conn.cwnd, MIN_TARGET_CWND)

    def ssthresh(self, conn: "TcpSender") -> int:
        self.prior_cwnd = max(self.prior_cwnd, conn.cwnd)
        return 1 << 30

    def on_enter_recovery(self, conn: "TcpSender") -> None:
        self.prior_cwnd = max(conn.cwnd, self.prior_cwnd)

    def on_exit_recovery(self, conn: "TcpSender") -> None:
        conn.cwnd = max(conn.cwnd, self.prior_cwnd)
        self.prior_cwnd = 0

    def pacing_rate_bps(self, conn: "TcpSender") -> Optional[float]:
        return self._rate_bps

    def min_tso_segs(self, conn: "TcpSender") -> int:
        return 2 if self._rate_bps < 1.2e9 else 4

    # -- model update -----------------------------------------------------------------

    def cong_control(self, conn: "TcpSender", rs: "RateSample") -> None:
        self._update_round(conn, rs)
        self._update_bw(rs)
        self._update_loss_bounds(conn, rs)
        self._update_state_machine(conn, rs)
        self._set_pacing_rate()
        self._set_cwnd(conn, rs)

    def bw_bps(self) -> float:
        """Effective bandwidth: the probe-discovered max, loss-bounded."""
        bw = self.bw_filter.value
        if self.bw_lo is not None:
            bw = min(bw, self.bw_lo)
        return bw

    def _update_round(self, conn: "TcpSender", rs: "RateSample") -> None:
        self._round_lost += rs.newly_lost_segments
        self._round_delivered_segs += rs.newly_acked_segments + rs.newly_sacked_segments
        if rs.prior_delivered >= self.next_rtt_delivered:
            self.next_rtt_delivered = conn.delivered_bytes
            self.rtt_cnt += 1
            self.round_start = True
        else:
            self.round_start = False

    def _update_bw(self, rs: "RateSample") -> None:
        if not rs.valid:
            return
        if not rs.is_app_limited or rs.delivery_rate_bps >= self.bw_filter.value:
            self.bw_filter.update(self.cycle_count, rs.delivery_rate_bps)

    # -- loss adaptation -----------------------------------------------------------------

    def _round_was_lossy(self) -> bool:
        if self._round_delivered_segs <= 0:
            return False
        return (
            self._round_lost > 0
            and self._round_lost / self._round_delivered_segs > LOSS_THRESH
        )

    def _update_loss_bounds(self, conn: "TcpSender", rs: "RateSample") -> None:
        if not self.round_start:
            return
        lossy = self._round_was_lossy()
        if lossy:
            # Tighten the short-term bounds (bbr2_adapt_lower_bounds).
            latest_bw = self.bw_filter.value
            self.bw_lo = max(
                latest_bw * BETA,
                BETA * (self.bw_lo if self.bw_lo is not None else latest_bw),
            )
            inflight = max(rs.prior_inflight_segments, MIN_TARGET_CWND)
            self.inflight_lo = max(
                int(BETA * (self.inflight_lo if self.inflight_lo is not None else inflight)),
                MIN_TARGET_CWND,
            )
            if self.mode == PROBE_UP:
                # Probing found the ceiling: record it and back off.
                self.inflight_hi = max(
                    int(BETA * (self.inflight_hi or inflight)), MIN_TARGET_CWND
                )
                self._enter_probe_down(conn)
            if self.mode == STARTUP:
                self._startup_loss_rounds += 1
        self._round_lost = 0
        self._round_delivered_segs = 0

    def _release_lower_bounds(self) -> None:
        self.bw_lo = None
        self.inflight_lo = None

    # -- state machine ----------------------------------------------------------------------

    def _update_state_machine(self, conn: "TcpSender", rs: "RateSample") -> None:
        now = conn.now
        if self.mode == STARTUP:
            self._check_startup_done(conn, rs)
        elif self.mode == DRAIN:
            if conn.inflight_segments <= self._bdp_segments(conn, 1.0):
                self._enter_probe_down(conn)
        elif self.mode == PROBE_DOWN:
            target = int(HEADROOM * (self.inflight_hi or self._bdp_segments(conn, 1.0)))
            if conn.inflight_segments <= max(target, self._bdp_segments(conn, 1.0)):
                self._enter_probe_cruise(conn)
        elif self.mode == PROBE_CRUISE:
            if now >= self.probe_wait_until_ns:
                self._enter_probe_refill(conn)
        elif self.mode == PROBE_REFILL:
            if self.round_start:
                self._enter_probe_up(conn)
        elif self.mode == PROBE_UP:
            if self.inflight_hi is not None and conn.inflight_segments >= self.inflight_hi:
                self.inflight_hi = conn.inflight_segments
            min_rtt = conn.min_rtt_ns or MSEC
            if now - self.cycle_stamp_ns > 4 * min_rtt and conn.inflight_segments >= self._bdp_segments(conn, 1.25):
                # Pipe held 1.25x for a while without loss: raise ceiling.
                self.inflight_hi = max(
                    self.inflight_hi or 0, int(self._bdp_segments(conn, 1.25))
                )
                self._enter_probe_down(conn)
        self._update_probe_rtt(conn, rs)

    def _check_startup_done(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self.round_start and not rs.is_app_limited:
            bw = self.bw_filter.value
            if bw >= self.full_bw * FULL_BW_THRESHOLD:
                self.full_bw = bw
                self.full_bw_cnt = 0
            else:
                self.full_bw_cnt += 1
        loss_exit = self._startup_loss_rounds >= STARTUP_FULL_LOSS_COUNT
        if self.full_bw_cnt >= FULL_BW_COUNT or loss_exit:
            self.full_bw_reached = True
            if loss_exit and self.inflight_hi is None:
                self.inflight_hi = max(conn.inflight_segments, MIN_TARGET_CWND)
            self.mode = DRAIN
            self.pacing_gain = DRAIN_GAIN
            self.cwnd_gain = CWND_GAIN
            self.trace_state(conn, mode=DRAIN, gain=self.pacing_gain)

    def _enter_probe_down(self, conn: "TcpSender") -> None:
        self.mode = PROBE_DOWN
        self.pacing_gain = 0.75
        self.cwnd_gain = CWND_GAIN
        self.cycle_stamp_ns = conn.now
        self.cycle_count += 1  # advance the bw filter's aging clock
        # Deterministic per-flow spread of the next probe (kernel uses a
        # random 2-3 s wait).
        spread = (conn.flow_id * 137) % 1000
        self.probe_wait_until_ns = conn.now + PROBE_WAIT_BASE_NS + spread * MSEC
        self.trace_state(conn, mode=PROBE_DOWN, gain=self.pacing_gain)

    def _enter_probe_cruise(self, conn: "TcpSender") -> None:
        self.mode = PROBE_CRUISE
        self.pacing_gain = 1.0
        self.cwnd_gain = CWND_GAIN
        self.trace_state(conn, mode=PROBE_CRUISE, gain=self.pacing_gain)

    def _enter_probe_refill(self, conn: "TcpSender") -> None:
        self.mode = PROBE_REFILL
        self.pacing_gain = 1.0
        self.cwnd_gain = CWND_GAIN
        self._release_lower_bounds()
        self.next_rtt_delivered = conn.delivered_bytes
        self.trace_state(conn, mode=PROBE_REFILL, gain=self.pacing_gain)

    def _enter_probe_up(self, conn: "TcpSender") -> None:
        self.mode = PROBE_UP
        self.pacing_gain = 1.25
        self.cwnd_gain = CWND_GAIN
        self.cycle_stamp_ns = conn.now
        self.trace_state(conn, mode=PROBE_UP, gain=self.pacing_gain)

    # -- PROBE_RTT -------------------------------------------------------------------------------

    def _update_probe_rtt(self, conn: "TcpSender", rs: "RateSample") -> None:
        expired = rs.min_rtt_expired or conn.min_rtt.expired(conn.now)
        if expired and self.mode not in (PROBE_RTT, STARTUP, DRAIN):
            self.mode = PROBE_RTT
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            self.prior_cwnd = max(self.prior_cwnd, conn.cwnd)
            self.probe_rtt_done_stamp = None
            self.trace_state(conn, mode=PROBE_RTT, gain=self.pacing_gain)
        if self.mode != PROBE_RTT:
            return
        # v2 dwells at half the estimated BDP rather than 4 packets.
        floor = max(MIN_TARGET_CWND, self._bdp_segments(conn, 0.5))
        conn.cwnd = min(conn.cwnd, floor)
        if self.probe_rtt_done_stamp is None and conn.inflight_segments <= floor:
            self.probe_rtt_done_stamp = conn.now + PROBE_RTT_DURATION_NS
            self.probe_rtt_round_done = False
            self.next_rtt_delivered = conn.delivered_bytes
        elif self.probe_rtt_done_stamp is not None:
            if self.round_start:
                self.probe_rtt_round_done = True
            if self.probe_rtt_round_done and conn.now >= self.probe_rtt_done_stamp:
                conn.min_rtt.update(conn.min_rtt.min_rtt_ns or MSEC, conn.now)
                conn.cwnd = max(conn.cwnd, self.prior_cwnd)
                self.prior_cwnd = 0
                self._enter_probe_down(conn)

    # -- outputs -------------------------------------------------------------------------------------

    def _bdp_segments(self, conn: "TcpSender", gain: float) -> int:
        min_rtt = conn.min_rtt_ns
        if min_rtt is None:
            return conn.config.initial_cwnd
        bdp_bytes = self.bw_bps() / 8.0 * (min_rtt / SEC)
        return max(int(gain * bdp_bytes / conn.mss), MIN_TARGET_CWND)

    def _set_pacing_rate(self) -> None:
        bw = self.bw_bps()
        if bw <= 0:
            return
        rate = self.pacing_gain * bw * PACING_MARGIN
        if self.full_bw_reached or rate > self._rate_bps:
            self._rate_bps = rate

    def _set_cwnd(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self.mode == PROBE_RTT:
            return
        acked = rs.newly_acked_segments
        target = self._bdp_segments(conn, self.cwnd_gain)
        tso_segs = max(1, conn.send_quantum_bytes // conn.mss)
        target += 3 * tso_segs
        if self.inflight_lo is not None:
            target = min(target, max(self.inflight_lo, MIN_TARGET_CWND))
        if self.inflight_hi is not None:
            cap = self.inflight_hi
            if self.mode == PROBE_CRUISE:
                cap = int(cap * HEADROOM)
            target = min(target, max(cap, MIN_TARGET_CWND))
        cwnd = conn.cwnd
        if self.full_bw_reached:
            cwnd = min(cwnd + acked, target)
        elif cwnd < target or conn.delivered_bytes < conn.config.initial_cwnd * conn.mss:
            cwnd = cwnd + acked
        conn.cwnd = max(cwnd, MIN_TARGET_CWND)
