"""BBR v1 congestion control (``net/ipv4/tcp_bbr.c``).

BBR models the path with two quantities — the maximum recent delivery
rate (*bottleneck bandwidth*) and the minimum recent RTT (*propagation
delay*) — and drives both a pacing rate and a cwnd from their product
(the BDP). The state machine:

* **STARTUP**: pace at 2/ln(2) ≈ 2.885× the estimated bandwidth to fill
  the pipe; leave when bandwidth stops growing (25% over 3 rounds).
* **DRAIN**: pace below the bandwidth to drain the queue STARTUP built.
* **PROBE_BW**: cycle pacing gains [1.25, 0.75, 1, 1, 1, 1, 1, 1], one
  phase per min-RTT, probing for more bandwidth then draining.
* **PROBE_RTT**: every 10 s (if the min-RTT sample is stale), drop cwnd
  to 4 packets for 200 ms to re-measure the propagation delay.

BBR *requires* pacing (``wants_pacing = True``) and recomputes its model
on every ACK — the two properties §5 of the paper isolates. The per-ACK
model cost is charged through :attr:`ack_cost_cycles`.

Includes the kernel's long-term bandwidth sampling (policer detection),
which is exercised by tests but rarely triggers in the paper's scenarios.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel import compiled_for
from ..units import MSEC, SEC
from .base import CongestionOps
from .minmax import WindowedMaxFilter

if TYPE_CHECKING:  # pragma: no cover
    from ..tcp.connection import TcpSender
    from ..tcp.rate_sample import RateSample

__all__ = ["Bbr"]

# --- kernel constants (tcp_bbr.c) -------------------------------------------

#: STARTUP/startup-cwnd gain: 2/ln(2)
HIGH_GAIN = 2885 / 1000
#: DRAIN pacing gain: inverse of HIGH_GAIN
DRAIN_GAIN = 1000 / 2885
#: steady-state cwnd gain
CWND_GAIN = 2.0
#: PROBE_BW pacing-gain cycle
PACING_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
CYCLE_LEN = len(PACING_GAIN_CYCLE)
#: bandwidth-filter window, in round trips
BW_FILTER_WINDOW_RTTS = CYCLE_LEN + 2
#: minimum cwnd (packets) — also the PROBE_RTT floor
MIN_TARGET_CWND = 4
#: PROBE_RTT dwell time
PROBE_RTT_DURATION_NS = 200 * MSEC
#: STARTUP exit: bandwidth must grow by this factor per round...
FULL_BW_THRESHOLD = 1.25
#: ...within this many rounds
FULL_BW_COUNT = 3
#: margin applied to the pacing rate (~1% below the computed rate)
PACING_MARGIN = 0.99

# Long-term (policer) sampling constants.
LT_INTERVAL_MIN_RTTS = 4
LT_LOSS_THRESH = 0.20
LT_BW_RATIO = 0.125
LT_BW_DIFF_BPS = 4000 * 8  # 4000 bytes/sec, as in the kernel
LT_BW_MAX_RTTS = 48

STARTUP = "startup"
DRAIN = "drain"
PROBE_BW = "probe_bw"
PROBE_RTT = "probe_rtt"


class Bbr(CongestionOps):
    """BBR v1."""

    name = "bbr"
    ack_cost_cycles = 2400
    wants_pacing = True

    def __init__(self, enable_lt_bw: bool = True):
        self.enable_lt_bw = enable_lt_bw
        self.mode = STARTUP
        self.bw_filter = WindowedMaxFilter(BW_FILTER_WINDOW_RTTS)
        self.rtt_cnt = 0
        self.next_rtt_delivered = 0
        self.round_start = False
        self.pacing_gain = HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN
        self.full_bw = 0.0
        self.full_bw_cnt = 0
        self.full_bw_reached = False
        self.cycle_idx = 0
        self.cycle_stamp_ns = 0
        self.probe_rtt_done_stamp: Optional[int] = None
        self.probe_rtt_round_done = False
        self.prior_cwnd = 0
        self.packet_conservation = False
        self._rate_bps: float = 0.0
        # long-term bw state
        self.lt_is_sampling = False
        self.lt_rtt_cnt = 0
        self.lt_use_bw = False
        self.lt_bw = 0.0
        self.lt_last_delivered = 0
        self.lt_last_lost = 0
        self.lt_last_stamp_ns = 0
        self._lost_total = 0

    # -- CongestionOps interface ------------------------------------------------

    def init(self, conn: "TcpSender") -> None:
        if type(self) is Bbr:
            # Kernel routing (same contract as Scoreboard.__new__): on a
            # compiled-kernel connection the whole per-ACK model runs in
            # C. The C constructor performs this init; the instance is
            # re-classed so rare hooks and probes read the C state.
            ck = compiled_for(getattr(conn, "_loop", None))
            if ck is not None and type(conn.scoreboard) is ck.Scoreboard:
                model = ck.BbrModel(conn, self.enable_lt_bw)
                self._model = model
                self.__class__ = _CompiledBbr
                # Plain methods are non-data descriptors, so these
                # instance attributes win the lookup: the three per-ACK
                # calls dispatch straight into C with no wrapper frame.
                self.cong_control = model.cong_control
                self.pacing_rate_bps = model.pacing_rate_bps
                self.min_tso_segs = model.min_tso_segs
                return
        self.cycle_stamp_ns = conn.now
        self._init_pacing_rate(conn)
        conn.cwnd = max(conn.cwnd, MIN_TARGET_CWND)

    def ssthresh(self, conn: "TcpSender") -> int:
        """BBR ignores loss for window sizing (TCP_INFINITE_SSTHRESH)."""
        self.prior_cwnd = max(self.prior_cwnd, conn.cwnd)
        return 1 << 30

    def on_enter_recovery(self, conn: "TcpSender") -> None:
        self.prior_cwnd = max(conn.cwnd, self.prior_cwnd)
        self.packet_conservation = True

    def on_exit_recovery(self, conn: "TcpSender") -> None:
        self.packet_conservation = False
        conn.cwnd = max(conn.cwnd, self.prior_cwnd)
        self.prior_cwnd = 0

    def on_rto(self, conn: "TcpSender") -> None:
        self.prior_cwnd = max(conn.cwnd, self.prior_cwnd)

    def pacing_rate_bps(self, conn: "TcpSender") -> Optional[float]:
        return self._rate_bps

    def min_tso_segs(self, conn: "TcpSender") -> int:
        # kernel bbr_min_tso_segs: 2 below ~1.2 Gbps, else 4 (for the GSO
        # engine's sake); the distinction rarely matters here.
        return 2 if self._rate_bps < 1.2e9 else 4

    # -- main per-ACK model update ------------------------------------------------

    def cong_control(self, conn: "TcpSender", rs: "RateSample") -> None:
        self._lost_total += rs.newly_lost_segments
        self._update_round(conn, rs)
        self._lt_bw_sampling(conn, rs)
        self._update_bw(conn, rs)
        self._check_full_bw_reached(conn, rs)
        self._check_drain(conn)
        self._update_cycle_phase(conn, rs)
        self._update_min_rtt_state(conn, rs)
        self._set_pacing_rate(conn)
        self._set_cwnd(conn, rs)

    # -- bandwidth model -------------------------------------------------------------

    def bw_bps(self) -> float:
        """Current bandwidth estimate in bits/s."""
        if self.lt_use_bw:
            return self.lt_bw
        return self.bw_filter.value

    def _update_round(self, conn: "TcpSender", rs: "RateSample") -> None:
        if rs.prior_delivered >= self.next_rtt_delivered:
            self.next_rtt_delivered = conn.delivered_bytes
            self.rtt_cnt += 1
            self.round_start = True
            self.packet_conservation = False
        else:
            self.round_start = False

    def _update_bw(self, conn: "TcpSender", rs: "RateSample") -> None:
        if not rs.valid:
            return
        sample_bps = rs.delivery_rate_bps
        # App-limited samples only raise the estimate (they understate bw).
        if not rs.is_app_limited or sample_bps >= self.bw_filter.value:
            self.bw_filter.update(self.rtt_cnt, sample_bps)

    def _check_full_bw_reached(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self.full_bw_reached or not self.round_start or rs.is_app_limited:
            return
        bw = self.bw_filter.value
        if bw >= self.full_bw * FULL_BW_THRESHOLD:
            self.full_bw = bw
            self.full_bw_cnt = 0
            return
        self.full_bw_cnt += 1
        if self.full_bw_cnt >= FULL_BW_COUNT:
            self.full_bw_reached = True
            if self.mode == STARTUP:
                self.mode = DRAIN
                self.pacing_gain = DRAIN_GAIN
                self.cwnd_gain = HIGH_GAIN
                self.trace_state(conn, mode=DRAIN, gain=self.pacing_gain)

    def _check_drain(self, conn: "TcpSender") -> None:
        if self.mode != DRAIN:
            return
        if conn.inflight_segments <= self._bdp_segments(conn, 1.0):
            self._enter_probe_bw(conn)

    # -- PROBE_BW gain cycling -----------------------------------------------------------

    def _enter_probe_bw(self, conn: "TcpSender") -> None:
        self.mode = PROBE_BW
        self.cwnd_gain = CWND_GAIN
        # Kernel picks a random phase excluding the 0.75 drain phase; we
        # use the flow id for determinism across runs.
        idx = (conn.flow_id * 5) % (CYCLE_LEN - 1)
        if idx >= 1:
            idx += 1  # skip index 1 (gain 0.75)
        self.cycle_idx = idx
        self.cycle_stamp_ns = conn.now
        self.pacing_gain = PACING_GAIN_CYCLE[self.cycle_idx]
        self.trace_state(conn, mode=PROBE_BW, gain=self.pacing_gain)

    def _update_cycle_phase(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self.mode != PROBE_BW:
            return
        if self._is_next_cycle_phase(conn, rs):
            self.cycle_idx = (self.cycle_idx + 1) % CYCLE_LEN
            self.cycle_stamp_ns = conn.now
            self.pacing_gain = (
                1.0 if self.lt_use_bw else PACING_GAIN_CYCLE[self.cycle_idx]
            )

    def _is_next_cycle_phase(self, conn: "TcpSender", rs: "RateSample") -> bool:
        min_rtt = conn.min_rtt_ns or MSEC
        is_full_length = conn.now - self.cycle_stamp_ns > min_rtt
        gain = self.pacing_gain
        if gain == 1.0:
            return is_full_length
        inflight = rs.prior_inflight_segments
        if gain > 1.0:
            # Probe until the target is hit or losses say the pipe is full.
            return is_full_length and (
                rs.newly_lost_segments > 0
                or inflight >= self._bdp_segments(conn, gain)
            )
        # gain < 1: drain until the extra queue is gone (or time is up).
        return is_full_length or inflight <= self._bdp_segments(conn, 1.0)

    # -- PROBE_RTT ----------------------------------------------------------------------------

    def _update_min_rtt_state(self, conn: "TcpSender", rs: "RateSample") -> None:
        # Pre-sample expiry counts (kernel ordering): the sample that
        # refreshes an expired window still triggers PROBE_RTT.
        filter_expired = rs.min_rtt_expired or conn.min_rtt.expired(conn.now)
        if (
            filter_expired
            and self.mode != PROBE_RTT
            and self.mode != STARTUP
        ):
            self.mode = PROBE_RTT
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            self.prior_cwnd = max(self.prior_cwnd, conn.cwnd)
            self.probe_rtt_done_stamp = None
            self.trace_state(conn, mode=PROBE_RTT, gain=self.pacing_gain)

        if self.mode == PROBE_RTT:
            conn.cwnd = min(conn.cwnd, MIN_TARGET_CWND)
            if (
                self.probe_rtt_done_stamp is None
                and conn.inflight_segments <= MIN_TARGET_CWND
            ):
                self.probe_rtt_done_stamp = conn.now + PROBE_RTT_DURATION_NS
                self.probe_rtt_round_done = False
                self.next_rtt_delivered = conn.delivered_bytes
            elif self.probe_rtt_done_stamp is not None:
                if self.round_start:
                    self.probe_rtt_round_done = True
                if self.probe_rtt_round_done and conn.now >= self.probe_rtt_done_stamp:
                    conn.min_rtt.update(conn.min_rtt.min_rtt_ns or MSEC, conn.now)
                    self._exit_probe_rtt(conn)

    def _exit_probe_rtt(self, conn: "TcpSender") -> None:
        conn.cwnd = max(conn.cwnd, self.prior_cwnd)
        self.prior_cwnd = 0
        if self.full_bw_reached:
            self._enter_probe_bw(conn)
        else:
            self.mode = STARTUP
            self.pacing_gain = HIGH_GAIN
            self.cwnd_gain = HIGH_GAIN
            self.trace_state(conn, mode=STARTUP, gain=self.pacing_gain)

    # -- rate and cwnd outputs ---------------------------------------------------------------------

    def _init_pacing_rate(self, conn: "TcpSender") -> None:
        rtt_ns = conn.srtt_ns or MSEC
        bw = conn.cwnd * conn.mss * 8 * SEC / rtt_ns
        self._rate_bps = HIGH_GAIN * bw * PACING_MARGIN

    def _set_pacing_rate(self, conn: "TcpSender") -> None:
        bw = self.bw_bps()
        if bw <= 0:
            return
        rate = self.pacing_gain * bw * PACING_MARGIN
        if self.full_bw_reached or rate > self._rate_bps:
            self._rate_bps = rate

    def _bdp_segments(self, conn: "TcpSender", gain: float) -> int:
        min_rtt = conn.min_rtt_ns
        if min_rtt is None:
            return conn.config.initial_cwnd
        bw = self.bw_bps()
        bdp_bytes = bw / 8.0 * (min_rtt / SEC)
        segs = int(gain * bdp_bytes / conn.mss)
        return segs if segs > MIN_TARGET_CWND else MIN_TARGET_CWND

    def _target_cwnd(self, conn: "TcpSender", gain: float) -> int:
        cwnd = self._bdp_segments(conn, gain)
        # Quantization budget: headroom for TSO super-packets and delayed
        # ACKs (kernel bbr_quantization_budget). This term is what keeps
        # the per-period burst from being strangled by cwnd at moderate
        # pacing strides — see DESIGN.md and the Table 2 bench.
        tso_segs = conn.send_quantum_bytes // conn.mss
        if tso_segs < 1:
            tso_segs = 1
        cwnd += 3 * tso_segs
        if self.mode == PROBE_BW and self.cycle_idx == 0:
            cwnd += 2
        return cwnd

    def _set_cwnd(self, conn: "TcpSender", rs: "RateSample") -> None:
        if self.mode == PROBE_RTT:
            return  # handled in _update_min_rtt_state
        acked = rs.newly_acked_segments
        target = self._target_cwnd(conn, self.cwnd_gain)
        cwnd = conn.cwnd
        if self.packet_conservation:
            floor = conn.inflight_segments + acked
            if floor > cwnd:
                cwnd = floor
        elif self.full_bw_reached:
            cwnd += acked
            if cwnd > target:
                cwnd = target
        elif cwnd < target or conn.delivered_bytes < conn.config.initial_cwnd * conn.mss:
            cwnd = cwnd + acked
        conn.cwnd = cwnd if cwnd > MIN_TARGET_CWND else MIN_TARGET_CWND

    # -- long-term bandwidth sampling (policer detection) ---------------------------------------------

    def _lt_bw_sampling(self, conn: "TcpSender", rs: "RateSample") -> None:
        if not self.enable_lt_bw:
            return
        if self.lt_use_bw:
            # Using the policer estimate: reset STARTUP if we somehow
            # re-enter it, and age the estimate out after a while.
            if self.mode == PROBE_BW and self.round_start:
                self.lt_rtt_cnt += 1
                if self.lt_rtt_cnt > LT_BW_MAX_RTTS:
                    self._lt_reset()
                    self.full_bw_reached = False  # re-probe
            return

        if not self.lt_is_sampling:
            if rs.newly_lost_segments == 0:
                return
            self._lt_reset_interval(conn)
            self.lt_is_sampling = True

        if rs.is_app_limited:
            self._lt_reset()
            return

        if self.round_start:
            self.lt_rtt_cnt += 1
        if self.lt_rtt_cnt < LT_INTERVAL_MIN_RTTS:
            return
        if self.lt_rtt_cnt > 4 * LT_INTERVAL_MIN_RTTS:
            self._lt_reset()
            return
        if rs.newly_lost_segments == 0:
            return

        lost = self._lost_total - self.lt_last_lost
        delivered_segs = max(
            1, (conn.delivered_bytes - self.lt_last_delivered) // conn.mss
        )
        if lost / delivered_segs < LT_LOSS_THRESH:
            return
        interval_ns = conn.now - self.lt_last_stamp_ns
        if interval_ns < (conn.min_rtt_ns or MSEC):
            return
        bw = (conn.delivered_bytes - self.lt_last_delivered) * 8 * SEC / interval_ns
        if self.lt_bw > 0:
            diff = abs(bw - self.lt_bw)
            if diff <= LT_BW_RATIO * self.lt_bw or diff <= LT_BW_DIFF_BPS:
                # Two consistent intervals: believe we are being policed.
                self.lt_bw = (bw + self.lt_bw) / 2.0
                self.lt_use_bw = True
                self.pacing_gain = 1.0
                self.lt_rtt_cnt = 0
                return
        self.lt_bw = bw
        self._lt_reset_interval(conn)

    def _lt_reset_interval(self, conn: "TcpSender") -> None:
        self.lt_last_stamp_ns = conn.now
        self.lt_last_delivered = conn.delivered_bytes
        self.lt_last_lost = self._lost_total
        self.lt_rtt_cnt = 0

    def _lt_reset(self) -> None:
        self.lt_is_sampling = False
        self.lt_use_bw = False
        self.lt_bw = 0.0
        self.lt_rtt_cnt = 0


class _CompiledBbr(Bbr):
    """A :class:`Bbr` whose model state lives in ``_ckernel.BbrModel``.

    Instances are never constructed directly: :meth:`Bbr.init` re-classes
    a plain ``Bbr`` after handing its state to the C model. The per-ACK
    entry points (``cong_control`` / ``pacing_rate_bps`` /
    ``min_tso_segs``) are bound C methods in the instance dict; this
    class supplies only the rare recovery/RTO hooks and read-side
    properties so probes and tests observe the C state (the properties
    are data descriptors, so they shadow the stale pure attributes left
    in the instance dict from ``__init__``).
    """

    def init(self, conn: "TcpSender") -> None:  # pragma: no cover
        raise RuntimeError("compiled BBR model is initialised exactly once")

    def ssthresh(self, conn: "TcpSender") -> int:
        m = self._model
        if conn.cwnd > m.prior_cwnd:
            m.prior_cwnd = conn.cwnd
        return 1 << 30

    def on_enter_recovery(self, conn: "TcpSender") -> None:
        m = self._model
        if conn.cwnd > m.prior_cwnd:
            m.prior_cwnd = conn.cwnd
        m.packet_conservation = True

    def on_exit_recovery(self, conn: "TcpSender") -> None:
        m = self._model
        m.packet_conservation = False
        if m.prior_cwnd > conn.cwnd:
            conn.cwnd = m.prior_cwnd
        m.prior_cwnd = 0

    def on_rto(self, conn: "TcpSender") -> None:
        m = self._model
        if conn.cwnd > m.prior_cwnd:
            m.prior_cwnd = conn.cwnd

    def bw_bps(self) -> float:
        return self._model.bw_bps()

    # read-side mirrors of the C model state
    mode = property(lambda self: self._model.mode)
    pacing_gain = property(lambda self: self._model.pacing_gain)
    cwnd_gain = property(lambda self: self._model.cwnd_gain)
    full_bw = property(lambda self: self._model.full_bw)
    full_bw_cnt = property(lambda self: self._model.full_bw_cnt)
    full_bw_reached = property(lambda self: self._model.full_bw_reached)
    rtt_cnt = property(lambda self: self._model.rtt_cnt)
    round_start = property(lambda self: self._model.round_start)
    cycle_idx = property(lambda self: self._model.cycle_idx)
    cycle_stamp_ns = property(lambda self: self._model.cycle_stamp_ns)
    probe_rtt_done_stamp = property(
        lambda self: self._model.probe_rtt_done_stamp
    )
    probe_rtt_round_done = property(
        lambda self: self._model.probe_rtt_round_done
    )
    prior_cwnd = property(lambda self: self._model.prior_cwnd)
    packet_conservation = property(
        lambda self: self._model.packet_conservation
    )
    _rate_bps = property(lambda self: self._model._rate_bps)
    lt_is_sampling = property(lambda self: self._model.lt_is_sampling)
    lt_rtt_cnt = property(lambda self: self._model.lt_rtt_cnt)
    lt_use_bw = property(lambda self: self._model.lt_use_bw)
    lt_bw = property(lambda self: self._model.lt_bw)
    _lost_total = property(lambda self: self._model._lost_total)
