"""iperf3-like bulk-transfer applications (§3.2's workload).

:class:`IperfClientApp` opens N parallel greedy uplink connections on the
phone stack (``iperf3 -c server -P N -t duration``);
:class:`IperfServerApp` sits on the desktop host and measures goodput the
way iperf3's server report does — application bytes received in order,
binned into intervals.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cc.base import CongestionOps
from ..metrics.collector import IntervalCounter
from ..netsim.testbed import Testbed
from ..sim import EventLoop
from ..tcp.connection import SocketConfig
from ..tcp.receiver import TcpReceiverEndpoint
from ..tcp.stack import MobileTcpStack, ServerHost
from ..units import MSEC, USEC
from .flows import FlowClient

__all__ = ["IperfClientApp", "IperfServerApp"]


class IperfServerApp(ServerHost):
    """Receiving side: per-flow and aggregate interval goodput."""

    def __init__(self, loop: EventLoop, testbed: Testbed, interval_ns: int = 100 * MSEC):
        super().__init__(testbed)
        self._loop = loop
        self.interval_ns = int(interval_ns)
        self.aggregate = IntervalCounter(loop, self.interval_ns)
        self.per_flow: Dict[int, IntervalCounter] = {}
        self.on_new_endpoint = self._attach_metrics

    def _attach_metrics(self, endpoint: TcpReceiverEndpoint) -> None:
        counter = IntervalCounter(self._loop, self.interval_ns)
        self.per_flow[endpoint.flow_id] = counter

        def on_goodput(nbytes: int) -> None:
            counter.add(nbytes)
            self.aggregate.add(nbytes)

        endpoint.on_goodput = on_goodput

    def goodput_bps_between(self, start_ns: int, end_ns: int) -> float:
        """Aggregate goodput (bits/s) over the measurement window."""
        return self.aggregate.rate_bps_between(start_ns, end_ns)

    def flow_goodput_bps_between(self, flow_id: int, start_ns: int, end_ns: int) -> float:
        """One flow's goodput (bits/s) over the window."""
        counter = self.per_flow.get(flow_id)
        return counter.rate_bps_between(start_ns, end_ns) if counter else 0.0


class IperfClientApp(FlowClient):
    """Sending side: N parallel greedy connections with RTT collection.

    The ``iperf3 -P N`` workload as a :class:`~repro.apps.flows.FlowClient`
    special case: one greedy flow group on one stack, started with the
    usual per-connection stagger.
    """

    def __init__(
        self,
        loop: EventLoop,
        stack: MobileTcpStack,
        cc_factory: Callable[[], CongestionOps],
        parallel: int = 1,
        socket_config: Optional[SocketConfig] = None,
        stagger_ns: int = 500 * USEC,
    ):
        if parallel < 1:
            raise ValueError("need at least one connection")
        super().__init__(loop, socket_config=socket_config, stagger_ns=stagger_ns)
        self.stack = stack
        self.add_flow_group(stack, cc_factory, count=parallel)
