"""iperf3-like bulk-transfer applications (§3.2's workload).

:class:`IperfClientApp` opens N parallel greedy uplink connections on the
phone stack (``iperf3 -c server -P N -t duration``);
:class:`IperfServerApp` sits on the desktop host and measures goodput the
way iperf3's server report does — application bytes received in order,
binned into intervals.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cc.base import CongestionOps
from ..metrics.collector import IntervalCounter, StatAccumulator
from ..netsim.testbed import Testbed
from ..sim import EventLoop
from ..tcp.connection import InfiniteSource, SocketConfig, TcpSender
from ..tcp.receiver import TcpReceiverEndpoint
from ..tcp.stack import MobileTcpStack, ServerHost
from ..units import MSEC, USEC

__all__ = ["IperfClientApp", "IperfServerApp"]


class IperfServerApp(ServerHost):
    """Receiving side: per-flow and aggregate interval goodput."""

    def __init__(self, loop: EventLoop, testbed: Testbed, interval_ns: int = 100 * MSEC):
        super().__init__(testbed)
        self._loop = loop
        self.interval_ns = int(interval_ns)
        self.aggregate = IntervalCounter(loop, self.interval_ns)
        self.per_flow: Dict[int, IntervalCounter] = {}
        self.on_new_endpoint = self._attach_metrics

    def _attach_metrics(self, endpoint: TcpReceiverEndpoint) -> None:
        counter = IntervalCounter(self._loop, self.interval_ns)
        self.per_flow[endpoint.flow_id] = counter

        def on_goodput(nbytes: int) -> None:
            counter.add(nbytes)
            self.aggregate.add(nbytes)

        endpoint.on_goodput = on_goodput

    def goodput_bps_between(self, start_ns: int, end_ns: int) -> float:
        """Aggregate goodput (bits/s) over the measurement window."""
        return self.aggregate.rate_bps_between(start_ns, end_ns)

    def flow_goodput_bps_between(self, flow_id: int, start_ns: int, end_ns: int) -> float:
        """One flow's goodput (bits/s) over the window."""
        counter = self.per_flow.get(flow_id)
        return counter.rate_bps_between(start_ns, end_ns) if counter else 0.0


class IperfClientApp:
    """Sending side: N parallel greedy connections with RTT collection."""

    def __init__(
        self,
        loop: EventLoop,
        stack: MobileTcpStack,
        cc_factory: Callable[[], CongestionOps],
        parallel: int = 1,
        socket_config: Optional[SocketConfig] = None,
        stagger_ns: int = 500 * USEC,
    ):
        if parallel < 1:
            raise ValueError("need at least one connection")
        self._loop = loop
        self.stack = stack
        self.connections: List[TcpSender] = []
        #: RTT samples taken at/after this time count toward the stats
        self.rtt_window_start_ns = 0
        self.rtt_stats = StatAccumulator(keep=True)
        self._stagger_ns = int(stagger_ns)
        for _ in range(parallel):
            sender = stack.create_connection(
                cc_factory(), config=socket_config, source=InfiniteSource()
            )
            sender.on_rtt_sample = self._on_rtt_sample
            self.connections.append(sender)

    def start(self) -> None:
        """Start every connection, slightly staggered like real flows."""
        for index, sender in enumerate(self.connections):
            self._loop.call_after(index * self._stagger_ns, sender.start)

    def stop(self) -> None:
        """Close every connection."""
        for sender in self.connections:
            sender.close()

    # -- aggregated sender-side stats ------------------------------------------

    def _on_rtt_sample(self, rtt_ns: int) -> None:
        if self._loop.now >= self.rtt_window_start_ns:
            self.rtt_stats.add(rtt_ns / 1e6)  # store milliseconds

    @property
    def retransmitted_segments(self) -> int:
        """Total segments retransmitted across all connections."""
        return sum(c.retransmitted_segments for c in self.connections)

    @property
    def rto_count(self) -> int:
        """Total RTO firings across all connections."""
        return sum(c.rto_count for c in self.connections)

    @property
    def mean_cwnd_segments(self) -> float:
        """Instantaneous mean cwnd across connections."""
        if not self.connections:
            return 0.0
        return sum(c.cwnd for c in self.connections) / len(self.connections)

    def mean_pacer_period_bytes(self) -> float:
        """Average bytes per pacing period across connections (Table 2)."""
        periods = sum(c.pacer.periods for c in self.connections)
        if periods == 0:
            return 0.0
        total = sum(c.pacer.bytes_per_period_total for c in self.connections)
        return total / periods

    def mean_pacer_idle_ns(self) -> float:
        """Average pacing idle time across connections (Table 2)."""
        periods = sum(c.pacer.periods for c in self.connections)
        if periods == 0:
            return 0.0
        total = sum(c.pacer.idle_ns_total for c in self.connections)
        return total / periods
