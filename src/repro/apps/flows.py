"""Flow orchestration: heterogeneous senders, lifetimes, and churn.

:class:`FlowClient` generalizes the iperf workload: flow *groups* (N
connections on one host stack, optionally byte-limited, with scheduled
start/stop times) plus Poisson *churn processes* (finite transfers whose
arrival times and sizes are pre-drawn from a seeded stream, so the run is
reproducible under any executor). The legacy
:class:`~repro.apps.iperf.IperfClientApp` is the special case of a single
greedy group on one stack.

Flow lifetimes are tracked in :class:`FlowRecord` entries — one per
connection, in flow-id order — from which the experiment layer derives
flow-completion-time summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import random

from ..cc.base import CongestionOps
from ..metrics.collector import StatAccumulator
from ..sim import EventLoop
from ..tcp.connection import FiniteSource, InfiniteSource, SocketConfig, TcpSender
from ..tcp.stack import MobileTcpStack
from ..units import USEC, seconds

__all__ = ["FlowClient", "FlowRecord"]


@dataclass
class FlowRecord:
    """Lifetime bookkeeping for one flow."""

    flow_id: int
    #: human label (normally the CC name of the owning flow entry)
    label: str = ""
    #: transfer size in bytes (None = greedy, runs until stopped)
    target_bytes: Optional[int] = None
    #: simulated time the flow started transmitting (None = never started)
    started_ns: Optional[int] = None
    #: simulated time the transfer completed (None = incomplete/greedy)
    completed_ns: Optional[int] = None

    @property
    def completion_time_ns(self) -> Optional[int]:
        """Flow completion time, or None while incomplete."""
        if self.started_ns is None or self.completed_ns is None:
            return None
        return self.completed_ns - self.started_ns


class FlowClient:
    """The sending side of a multi-flow experiment.

    Groups and churn processes are added while building the experiment;
    :meth:`start` schedules every static flow (staggered like real iperf
    clients) and every pre-drawn churn arrival. All connections — static
    and spawned — accumulate in :attr:`connections` in flow-id order,
    with a parallel :attr:`records` list.
    """

    def __init__(
        self,
        loop: EventLoop,
        socket_config: Optional[SocketConfig] = None,
        stagger_ns: int = 500 * USEC,
    ):
        self._loop = loop
        self._config = socket_config
        self._stagger_ns = int(stagger_ns)
        self._mss = (socket_config or SocketConfig()).mss
        self.connections: List[TcpSender] = []
        self.records: List[FlowRecord] = []
        #: RTT samples taken at/after this time count toward the stats
        self.rtt_window_start_ns = 0
        self.rtt_stats = StatAccumulator(keep=True)
        self._static: List[Tuple[TcpSender, FlowRecord, float, Optional[float]]] = []
        self._churn: List[
            Tuple[MobileTcpStack, Callable[[], CongestionOps], List[Tuple[int, int]], str]
        ] = []

    # -- experiment construction ----------------------------------------------

    def add_flow_group(
        self,
        stack: MobileTcpStack,
        cc_factory: Callable[[], CongestionOps],
        count: int = 1,
        start_s: float = 0.0,
        stop_s: Optional[float] = None,
        transfer_bytes: Optional[int] = None,
        label: str = "",
    ) -> List[TcpSender]:
        """Open *count* connections on *stack* (they transmit on start).

        ``transfer_bytes`` bounds each connection (rounded up to whole
        MSS segments — partial segments never transmit); ``None`` keeps
        them greedy. Connections are created immediately, in call order,
        so flow ids follow group declaration order.
        """
        created: List[TcpSender] = []
        target = (
            self._segment_aligned(transfer_bytes)
            if transfer_bytes is not None
            else None
        )
        for _ in range(count):
            source = FiniteSource(target) if target is not None else InfiniteSource()
            sender = stack.create_connection(
                cc_factory(), config=self._config, source=source
            )
            sender.on_rtt_sample = self._on_rtt_sample
            record = FlowRecord(
                flow_id=sender.flow_id, label=label, target_bytes=target
            )
            if target is not None:
                self._wire_completion(sender, record, target)
            self.connections.append(sender)
            self.records.append(record)
            self._static.append((sender, record, start_s, stop_s))
            created.append(sender)
        return created

    def add_churn_process(
        self,
        stack: MobileTcpStack,
        cc_factory: Callable[[], CongestionOps],
        rng: random.Random,
        arrival_rate_hz: float,
        mean_transfer_bytes: int,
        start_s: float = 0.0,
        stop_s: Optional[float] = None,
        horizon_s: Optional[float] = None,
        max_arrivals: Optional[int] = None,
        label: str = "",
    ) -> int:
        """Schedule a Poisson process of finite transfers on *stack*.

        The whole arrival schedule — exponential inter-arrival times at
        *arrival_rate_hz* and exponential sizes with mean
        *mean_transfer_bytes*, rounded up to whole segments — is drawn
        here, in one place, from *rng*. Event callbacks never touch the
        stream, so the run is identical under serial, parallel, and
        cached execution. Returns the number of scheduled arrivals.
        """
        if arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be > 0")
        if mean_transfer_bytes <= 0:
            raise ValueError("mean_transfer_bytes must be > 0")
        end_s = stop_s if stop_s is not None else horizon_s
        if end_s is None and max_arrivals is None:
            raise ValueError(
                "an unbounded churn process needs stop_s, horizon_s, or "
                "max_arrivals"
            )
        arrivals: List[Tuple[int, int]] = []
        t = start_s
        while True:
            t += rng.expovariate(arrival_rate_hz)
            if end_s is not None and t >= end_s:
                break
            nbytes = self._segment_aligned(
                rng.expovariate(1.0 / mean_transfer_bytes)
            )
            arrivals.append((seconds(t), nbytes))
            if max_arrivals is not None and len(arrivals) >= max_arrivals:
                break
        self._churn.append((stack, cc_factory, arrivals, label))
        return len(arrivals)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Schedule every static flow and churn arrival.

        Static flows start at their group's ``start_s`` plus the iperf
        stagger (one stagger step per static flow, in creation order —
        exactly the legacy client's schedule when every ``start_s`` is
        0); stops and churn arrivals are plain timed events.
        """
        for index, (sender, record, start_s, stop_s) in enumerate(self._static):
            delay_ns = seconds(start_s) + index * self._stagger_ns
            self._loop.call_after(delay_ns, self._starter(sender, record))
            if stop_s is not None:
                self._loop.call_after(seconds(stop_s), sender.close)
        for stack, cc_factory, arrivals, label in self._churn:
            for when_ns, nbytes in arrivals:
                self._loop.call_after(
                    when_ns, self._spawner(stack, cc_factory, nbytes, label)
                )

    def stop(self) -> None:
        """Close every connection (idempotent per flow)."""
        for sender in self.connections:
            sender.close()

    # -- flow-completion summaries ----------------------------------------------

    @property
    def flows_completed(self) -> int:
        """Finite transfers that acknowledged all their bytes."""
        return sum(1 for r in self.records if r.completed_ns is not None)

    def completion_times_ns(self) -> List[int]:
        """Completion time of every finished transfer, flow-id order."""
        return [
            r.completion_time_ns
            for r in self.records
            if r.completion_time_ns is not None
        ]

    # -- aggregated sender-side stats ------------------------------------------

    def _on_rtt_sample(self, rtt_ns: int) -> None:
        if self._loop.now >= self.rtt_window_start_ns:
            self.rtt_stats.add(rtt_ns / 1e6)  # store milliseconds

    @property
    def retransmitted_segments(self) -> int:
        """Total segments retransmitted across all connections."""
        return sum(c.retransmitted_segments for c in self.connections)

    @property
    def rto_count(self) -> int:
        """Total RTO firings across all connections."""
        return sum(c.rto_count for c in self.connections)

    @property
    def mean_cwnd_segments(self) -> float:
        """Instantaneous mean cwnd across connections."""
        if not self.connections:
            return 0.0
        return sum(c.cwnd for c in self.connections) / len(self.connections)

    def mean_pacer_period_bytes(self) -> float:
        """Average bytes per pacing period across connections (Table 2)."""
        periods = sum(c.pacer.periods for c in self.connections)
        if periods == 0:
            return 0.0
        total = sum(c.pacer.bytes_per_period_total for c in self.connections)
        return total / periods

    def mean_pacer_idle_ns(self) -> float:
        """Average pacing idle time across connections (Table 2)."""
        periods = sum(c.pacer.periods for c in self.connections)
        if periods == 0:
            return 0.0
        total = sum(c.pacer.idle_ns_total for c in self.connections)
        return total / periods

    # -- internals ----------------------------------------------------------------

    def _segment_aligned(self, nbytes) -> int:
        """Round a transfer size up to whole MSS segments (min 1)."""
        segments = max(1, -(-int(nbytes) // self._mss))
        return segments * self._mss

    def _wire_completion(
        self, sender: TcpSender, record: FlowRecord, target_bytes: int
    ) -> None:
        sender.complete_at_bytes = target_bytes

        def done() -> None:
            record.completed_ns = self._loop.now
            sender.close()

        sender.on_complete = done

    def _starter(self, sender: TcpSender, record: FlowRecord) -> Callable[[], None]:
        def go() -> None:
            record.started_ns = self._loop.now
            sender.start()

        return go

    def _spawner(
        self,
        stack: MobileTcpStack,
        cc_factory: Callable[[], CongestionOps],
        nbytes: int,
        label: str,
    ) -> Callable[[], None]:
        def spawn() -> None:
            sender = stack.create_connection(
                cc_factory(), config=self._config, source=FiniteSource(nbytes)
            )
            sender.on_rtt_sample = self._on_rtt_sample
            record = FlowRecord(
                flow_id=sender.flow_id,
                label=label,
                target_bytes=nbytes,
                started_ns=self._loop.now,
            )
            self._wire_completion(sender, record, nbytes)
            self.connections.append(sender)
            self.records.append(record)
            sender.start()

        return spawn
