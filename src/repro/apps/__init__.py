"""Workload applications: the iperf3-like bulk uplink client/server."""

from .iperf import IperfClientApp, IperfServerApp

__all__ = ["IperfClientApp", "IperfServerApp"]
