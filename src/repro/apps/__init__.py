"""Workload applications: bulk uplink clients (iperf-like and
multi-flow) and the measuring server."""

from .flows import FlowClient, FlowRecord
from .iperf import IperfClientApp, IperfServerApp

__all__ = ["FlowClient", "FlowRecord", "IperfClientApp", "IperfServerApp"]
