"""Named registries for the library's pluggable components.

Every measurement point in the paper is "a device + CPU config + medium
+ CC + knobs" (Table 1, §3.2); each of those axes is a *named* component
that experiment specs reference as data. A :class:`Registry` is the one
lookup mechanism behind all of them: congestion-control factories
(``repro.cc.CC_ALGORITHMS``), stack executors (``repro.cpu.EXECUTORS``),
access media (``repro.netsim.MEDIA``), device profiles
(``repro.devices.DEVICES``), and Table 1 CPU configurations
(``repro.devices.CPU_CONFIGS``).

Components register themselves in the module that defines them, so a
registry is fully populated as soon as it is importable. Third-party
extensions (e.g. a BBRv3 variant) call ``register`` at import time and
become addressable from specs, scenario files, and the CLI with no core
changes.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, List, Tuple, TypeVar

__all__ = [
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "DuplicateNameError",
    "all_registries",
]

T = TypeVar("T")


class RegistryError(ValueError):
    """Base class for registry lookup/registration failures."""


class UnknownNameError(RegistryError, KeyError):
    """A name was looked up that no component registered.

    The message enumerates the valid names so CLI users and scenario
    authors can self-correct.
    """

    def __init__(self, kind: str, name: str, choices: Iterable[str]):
        self.kind = kind
        self.name = name
        self.choices = sorted(choices)
        ValueError.__init__(
            self,
            f"unknown {kind} {name!r}; choose from {self.choices}",
        )

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class DuplicateNameError(RegistryError):
    """A name was registered twice without ``replace=True``."""

    def __init__(self, kind: str, name: str):
        self.kind = kind
        self.name = name
        super().__init__(
            f"{kind} {name!r} is already registered; "
            f"pass replace=True to override it"
        )


class Registry(Generic[T]):
    """A small name -> component mapping with helpful errors.

    *kind* is the human-readable component category ("congestion
    control", "medium", ...) used in error messages. Registration order
    is preserved and is the order :meth:`names` reports, so CLI
    ``choices=`` and scenario docs stay stable across runs.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._items: Dict[str, T] = {}

    def register(self, name: str, item: T, replace: bool = False) -> T:
        """Register *item* under *name*; returns *item* for chaining."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        if name in self._items and not replace:
            raise DuplicateNameError(self.kind, name)
        self._items[name] = item
        return item

    def get(self, name: str) -> T:
        """Look up *name*; raises :class:`UnknownNameError` otherwise."""
        try:
            return self._items[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self._items) from None

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._items)

    def items(self) -> List[Tuple[str, T]]:
        """(name, component) pairs, in registration order."""
        return list(self._items.items())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self._items)})"


def all_registries() -> Dict[str, "Registry"]:
    """Every component registry, keyed by a stable section label.

    Imports lazily so this module stays dependency-free (component
    modules import it at their own import time).
    """
    from .cc import CC_ALGORITHMS
    from .cpu import EXECUTORS
    from .devices import CPU_CONFIGS, DEVICES
    from .netsim import MEDIA
    from .obs.probes import PROBES

    return {
        "cc": CC_ALGORITHMS,
        "executor": EXECUTORS,
        "medium": MEDIA,
        "device": DEVICES,
        "cpu-config": CPU_CONFIGS,
        "probe": PROBES,
    }
